"""End-to-end tests of the online adaptive policy subsystem.

Small scales keep these fast; the full-scale 18-workload comparison (the
acceptance measurement) runs in ``benchmarks/test_fig14_adaptive.py``.
"""

from __future__ import annotations

import json

import pytest

from repro import cli
from repro.adaptive import AdaptiveConfig
from repro.config import scaled_config
from repro.core.policies import CACHE_R, CACHE_RW, UNCACHED
from repro.experiments import (
    ExperimentRunner,
    JobSpec,
    adaptive_summary,
    adaptive_sweep,
    figure14_adaptive,
)
from repro.experiments.adaptive import DYNAMIC, geomean
from repro.experiments.jobs import execute_job
from repro.session import SimulationSession, simulate
from repro.workloads.registry import get_workload

TINY = scaled_config(2)

#: a fast adaptive configuration for miniature test runs
FAST = AdaptiveConfig(epoch_cycles=500, min_leader_accesses=8)


@pytest.fixture(scope="module")
def dynamic_report():
    return simulate(get_workload("FwSoft", scale=0.3), adaptive=FAST, config=TINY)


class TestDynamicSimulation:
    def test_report_carries_the_dynamic_label_and_counters(self, dynamic_report):
        assert dynamic_report.policy == "Dynamic"
        assert dynamic_report.cycles > 0
        counters = dynamic_report.counters
        assert counters.get("adaptive.decisions", 0) > 0
        assert any(name.startswith("adaptive.duel.") for name in counters)
        assert any(name.startswith("adaptive.kernels_under.") for name in counters)

    def test_dynamic_runs_are_deterministic(self, dynamic_report):
        again = simulate(get_workload("FwSoft", scale=0.3), adaptive=FAST, config=TINY)
        assert again.to_dict() == dynamic_report.to_dict()

    def test_controller_history_starts_at_the_initial_policy(self):
        session = SimulationSession(adaptive=FAST, config=TINY)
        session.run(get_workload("FwSoft", scale=0.2))
        history = session.controller.history
        assert history[0] == (0, FAST.initial_policy.name)
        assert all(cycle >= 0 for cycle, _name in history)

    def test_dynamic_stays_at_or_below_static_worst_on_reuse_workload(self):
        """The acceptance property, in miniature, on a reuse-heavy kernel."""
        workload = lambda: get_workload("FwSoft", scale=0.5)  # noqa: E731
        static = {
            policy.name: simulate(workload(), policy, config=TINY).cycles
            for policy in (UNCACHED, CACHE_R, CACHE_RW)
        }
        dynamic = simulate(workload(), adaptive=FAST, config=TINY).cycles
        assert dynamic <= max(static.values()) * 1.02

    def test_mid_kernel_switching_runs_to_completion(self):
        config = AdaptiveConfig(
            epoch_cycles=500, min_leader_accesses=8, mid_kernel_switching=True
        )
        report = simulate(get_workload("FwLSTM", scale=0.05), adaptive=config, config=TINY)
        assert report.cycles > 0

    def test_session_without_policy_or_adaptive_raises(self):
        with pytest.raises(ValueError):
            SimulationSession(config=TINY)


class TestAdaptiveJobs:
    def test_adaptive_job_round_trips_through_the_executor(self, tmp_path):
        runner = ExperimentRunner(
            scale=0.2, config=TINY, workload_names=("FwSoft",),
            cache_dir=str(tmp_path / "store"),
        )
        cold = adaptive_sweep(runner, FAST)
        assert runner.runs_simulated == 1
        warm_runner = ExperimentRunner(
            scale=0.2, config=TINY, workload_names=("FwSoft",),
            cache_dir=str(tmp_path / "store"),
        )
        warm = adaptive_sweep(warm_runner, FAST)
        assert warm_runner.runs_simulated == 0 and warm_runner.runs_loaded == 1
        assert warm["FwSoft"].to_dict() == cold["FwSoft"].to_dict()

    def test_adaptive_config_changes_the_job_fingerprint(self):
        base = JobSpec(workload="FwSoft", policy=CACHE_R, scale=0.2, config=TINY)
        adaptive = JobSpec(
            workload="FwSoft", policy=CACHE_R, scale=0.2, config=TINY, adaptive=FAST
        )
        retuned = JobSpec(
            workload="FwSoft", policy=CACHE_R, scale=0.2, config=TINY,
            adaptive=AdaptiveConfig(epoch_cycles=501, min_leader_accesses=8),
        )
        assert base.fingerprint() != adaptive.fingerprint()
        assert adaptive.fingerprint() != retuned.fingerprint()
        assert adaptive.summary()["adaptive"] == "Dynamic"

    def test_execute_job_honours_the_adaptive_field(self):
        job = JobSpec(workload="FwSoft", policy=CACHE_R, scale=0.2, config=TINY,
                      adaptive=FAST)
        report = execute_job(job)
        assert report.policy == "Dynamic"


class TestFigure14:
    @pytest.fixture(scope="class")
    def figure(self):
        runner = ExperimentRunner(
            scale=0.2, config=TINY, workload_names=("FwSoft", "MHA", "FwAct")
        )
        return figure14_adaptive(runner, adaptive_config=FAST)

    def test_series_and_baseline(self, figure):
        for series in figure.values():
            assert series["StaticBest"] == pytest.approx(1.0)
            assert series["StaticWorst"] >= 1.0 - 1e-9
            assert series[DYNAMIC] > 0
            assert "CacheRW-PCby" in series

    def test_summary_covers_all_and_per_category_groups(self, figure):
        summary = adaptive_summary(figure)
        assert "All" in summary
        assert "Reuse Sensitive" in summary  # FwSoft and MHA
        assert summary["All"]["StaticBest"] == pytest.approx(1.0)

    def test_geomean_helper(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])


class TestCliAdaptive:
    def test_adaptive_command_prints_figure_and_writes_json(self, tmp_path, capsys):
        out_file = tmp_path / "figure14.json"
        code = cli.main(
            [
                "--scale", "0.15", "--cus", "2",
                "adaptive", "--workloads", "FwSoft", "MHA",
                "--epoch-cycles", "500", "--no-cache",
                "--json-out", str(out_file),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Figure 14" in output and "Dynamic" in output
        blob = json.loads(out_file.read_text())
        assert blob["schema"] == 1
        assert set(blob["figure14"]) == {"FwSoft", "MHA"}
        assert "All" in blob["summary"]

    def test_adaptive_command_accepts_candidate_subset(self, capsys):
        code = cli.main(
            [
                "--scale", "0.1", "--cus", "2",
                "adaptive", "--workloads", "FwSoft",
                "--candidates", "Uncached", "CacheR",
                "--epoch-cycles", "500", "--no-cache",
            ]
        )
        assert code == 0
        assert "Figure 14" in capsys.readouterr().out
