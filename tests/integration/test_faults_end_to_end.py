"""End-to-end fault injection: determinism, degradation, recovery.

The resilience claims the chaos study rests on:

* a faulted run is exactly as deterministic as a healthy one -- same plan,
  same seed, bit-identical report, across repeats and across backends;
* every fault kind actually degrades the run it targets (injected events,
  degraded cycles, availability < 1) and the system completes anyway;
* recovery semantics hold: killed tenants restart and finish, permanently
  killed tenants are retired without deadlocking the mix, failed devices
  evacuate onto survivors;
* plans that need more hardware than the system has are rejected up
  front, not discovered as a hang;
* backends record structured failures instead of silently swallowing
  dead workers.
"""

from __future__ import annotations

import pytest

from repro.config import scaled_config
from repro.core.policies import CACHE_R, CACHE_RW
from repro.experiments.jobs import (
    JobSpec,
    ProcessPoolBackend,
    SerialBackend,
    SweepExecutor,
)
from repro.faults import (
    FAULT_PLANS,
    FaultEvent,
    FaultPlan,
    fault_plan_by_name,
    generate_fault_plan,
)
from repro.session import simulate
from repro.streams import StreamConfig
from repro.topology import topology_by_name
from repro.workloads.registry import get_workload

TINY = scaled_config(2)
DUAL = topology_by_name("dual-chiplet")
#: a two-tenant mix small enough for per-test simulation
MIX = (
    StreamConfig(workload="MHA", scale=0.15),
    StreamConfig(workload="FwLSTM", scale=0.15, launch_cycle=200),
)


def run_mix(faults=None, policy=CACHE_RW, topology=DUAL):
    return simulate(
        policy=policy, config=TINY, topology=topology, streams=MIX, faults=faults
    )


class TestFaultDeterminism:
    def test_empty_plan_is_bit_identical_to_no_plan(self):
        healthy = run_mix(faults=None)
        pinned = run_mix(faults=FaultPlan())
        assert pinned.to_dict() == healthy.to_dict()

    @pytest.mark.parametrize("plan_name", sorted(set(FAULT_PLANS) - {"none"}))
    def test_faulted_runs_repeat_bit_identically(self, plan_name):
        plan = fault_plan_by_name(plan_name)
        first = run_mix(faults=plan)
        second = run_mix(faults=plan)
        assert first.to_dict() == second.to_dict()

    def test_generated_plan_replays_bit_identically(self):
        plan = generate_fault_plan(7, num_devices=2, num_streams=2)
        assert run_mix(faults=plan).to_dict() == run_mix(faults=plan).to_dict()

    def test_serial_and_pool_backends_agree_on_faulted_jobs(self):
        jobs = [
            JobSpec(
                workload="chaos-mix",
                policy=CACHE_RW,
                config=TINY,
                streams=MIX,
                topology=DUAL,
                faults=fault_plan_by_name(name),
            )
            for name in ("none", "tenant-churn", "device-outage", "dram-storm")
        ]
        serial = SerialBackend().run_jobs(jobs)
        pooled = ProcessPoolBackend(max_workers=2).run_jobs(jobs)
        assert [r.to_dict() for r in pooled] == [r.to_dict() for r in serial]

    def test_empty_plan_shares_the_job_fingerprint_of_no_plan(self):
        base = JobSpec(workload="FwSoft", policy=CACHE_R, scale=0.1, config=TINY)
        pinned = JobSpec(
            workload="FwSoft", policy=CACHE_R, scale=0.1, config=TINY,
            faults=FaultPlan(),
        )
        chaotic = JobSpec(
            workload="FwSoft", policy=CACHE_R, scale=0.1, config=TINY,
            faults=FAULT_PLANS["dram-storm"],
        )
        assert pinned.fingerprint() == base.fingerprint()
        assert chaotic.fingerprint() != base.fingerprint()


class TestGracefulDegradation:
    @pytest.mark.parametrize(
        "plan_name", ["link-brownout", "device-outage", "dram-storm", "tenant-churn"]
    )
    def test_every_registered_plan_degrades_and_completes(self, plan_name):
        healthy = run_mix()
        faulted = run_mix(faults=fault_plan_by_name(plan_name))
        assert faulted.faults_injected > 0
        assert faulted.degraded_cycles > 0
        assert 0.0 <= faulted.availability < 1.0
        # graceful: degraded, not dead -- all kernels still complete
        assert faulted.get("gpu.kernels_completed") >= healthy.get(
            "gpu.kernels_completed"
        )

    def test_healthy_run_reports_full_availability_and_no_fault_counters(self):
        healthy = run_mix()
        assert healthy.availability == 1.0
        assert healthy.faults_injected == 0
        assert not any(key.startswith("faults.") for key in healthy.counters)

    def test_dram_spike_slows_a_single_device_run(self):
        workload = get_workload("FwSoft", scale=0.1)
        plan = FaultPlan(
            events=(
                FaultEvent(cycle=200, kind="dram_spike", duration=6_000,
                           extra_latency=300),
            )
        )
        healthy = simulate(workload, CACHE_R, config=TINY)
        spiked = simulate(workload, CACHE_R, config=TINY, faults=plan)
        assert spiked.cycles > healthy.cycles
        assert spiked.get("faults.dram_slowed_accesses") > 0

    def test_device_failure_reroutes_onto_survivors(self):
        # short enough an outage that the device recovers before the run
        # ends (the registered device-outage plan outlives this tiny mix,
        # so its recovery event lands after completion and no-ops)
        plan = FaultPlan(
            events=(
                FaultEvent(cycle=3_000, kind="device_fail", target=1, duration=4_000),
            )
        )
        report = run_mix(faults=plan)
        assert report.get("faults.device_failures") == 1
        assert report.get("faults.device_recoveries") == 1
        assert report.get("faults.rerouted_wavefronts") > 0

    def test_killed_tenant_restarts_and_recovers(self):
        report = run_mix(faults=fault_plan_by_name("tenant-churn"))
        assert report.get("stream1.kills") == 1
        assert report.get("stream1.restarts") == 1
        assert report.stream_recovery_cycles(1) > 0
        assert report.recovery_cycles >= report.stream_recovery_cycles(1)
        # the churned tenant still finishes its kernels
        assert report.get("stream1.kernels_completed") > 0

    def test_permanent_kill_retires_the_tenant_without_deadlock(self):
        plan = FaultPlan(
            events=(FaultEvent(cycle=2_500, kind="stream_kill", target=1, duration=0),)
        )
        report = run_mix(faults=plan)
        assert report.get("stream1.kills") == 1
        assert report.get("stream1.lost") == 1
        assert report.get("stream1.restarts", 0) == 0
        # the surviving tenant still completes
        assert report.get("stream0.kernels_completed") > 0


class TestPlanValidation:
    def test_device_plan_rejected_on_single_device_system(self):
        workload = get_workload("FwSoft", scale=0.1)
        with pytest.raises(ValueError, match="devices"):
            simulate(
                workload, CACHE_R, config=TINY,
                faults=fault_plan_by_name("device-outage"),
            )

    def test_stream_plan_rejected_without_enough_streams(self):
        workload = get_workload("FwSoft", scale=0.1)
        with pytest.raises(ValueError, match="stream"):
            simulate(
                workload, CACHE_R, config=TINY,
                faults=fault_plan_by_name("tenant-churn"),
            )

    def test_permanent_outage_event_is_rejected_at_construction(self):
        with pytest.raises(ValueError, match="duration"):
            FaultEvent(cycle=0, kind="link_outage", duration=0)


class TestBackendFailureRecords:
    def test_serial_backend_records_the_failure_it_raises(self):
        backend = SerialBackend()
        bad = JobSpec(workload="NotAWorkload", policy=CACHE_R, scale=0.1, config=TINY)
        with pytest.raises(KeyError):
            backend.run_jobs([bad])
        (failure,) = backend.failures
        assert failure.index == 0
        assert failure.attempts == 1
        assert "NotAWorkload" in failure.error
        assert failure.fingerprint == bad.fingerprint()
        assert failure.as_dict()["job"]["workload"] == "NotAWorkload"

    def test_pool_backend_records_failures_and_keeps_survivors(self, tmp_path):
        good = JobSpec(workload="FwSoft", policy=CACHE_R, scale=0.1, config=TINY)
        other = JobSpec(workload="FwAct", policy=CACHE_R, scale=0.1, config=TINY)
        bad = JobSpec(workload="NotAWorkload", policy=CACHE_R, scale=0.1, config=TINY)
        backend = ProcessPoolBackend(max_workers=2)
        finished: dict[int, object] = {}
        with pytest.raises(KeyError):
            backend.run_jobs(
                [good, bad, other],
                on_result=lambda index, report: finished.setdefault(index, report),
            )
        (failure,) = backend.failures
        assert failure.index == 1
        assert "NotAWorkload" in failure.error
        # the healthy jobs were delivered despite the dead one
        assert set(finished) == {0, 2}

    def test_pool_backend_retries_transient_failures(self):
        # a deterministic failure exhausts the retry budget: attempts
        # reflects every pool generation that tried the job
        bad = JobSpec(workload="NotAWorkload", policy=CACHE_R, scale=0.1, config=TINY)
        good = JobSpec(workload="FwSoft", policy=CACHE_R, scale=0.1, config=TINY)
        backend = ProcessPoolBackend(max_workers=2, retries=2, retry_backoff=0.0)
        with pytest.raises(KeyError):
            backend.run_jobs([good, bad])
        (failure,) = backend.failures
        assert failure.attempts == 3

    def test_executor_accounts_failures_in_stats(self):
        executor = SweepExecutor(backend=SerialBackend())
        bad = JobSpec(workload="NotAWorkload", policy=CACHE_R, scale=0.1, config=TINY)
        with pytest.raises(KeyError):
            executor.run([bad])
        assert executor.stats.runs_failed == 1
        (failure,) = executor.stats.failures
        assert failure.fingerprint == bad.fingerprint()

    def test_backend_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(timeout=0)
        with pytest.raises(ValueError):
            ProcessPoolBackend(retries=-1)
        with pytest.raises(ValueError):
            ProcessPoolBackend(retry_backoff=-0.1)
