"""Merged sharded runs against their monolithic equivalents.

Sharding splits a run along a physical seam (partitioned streams, or
devices of a multi-chip topology) into epoch-synchronized worker
processes and merges the per-shard reports.  The merge contract tested
here: traffic-driven totals (DRAM/L2 accesses, GPU work) are *conserved
exactly* -- the same memory requests happen, just in different
processes -- while timing-coupled counters (queue stalls, row-buffer
locality, contention) may drift because the shards no longer interleave
in one clock.  Failure paths surface as :class:`ShardExecutionError`
carrying the same structured ``JobFailure`` records sweep backends use.
"""

from __future__ import annotations

import pytest

from repro.accel import SamplingConfig, ShardConfig
from repro.accel.shard import ShardExecutionError, run_sharded
from repro.config import scaled_config
from repro.core.policies import policy_by_name
from repro.session import SimulationSession, simulate
from repro.streams import StreamConfig
from repro.topology import TOPOLOGIES
from repro.workloads import get_workload

#: totals that must survive the process split bit-for-bit: they count
#: *what* traffic happened, not *when*
CONSERVED = (
    "gpu.vector_ops",
    "gpu.mem_requests",
    "gpu.kernels_launched",
    "l1.accesses",
    "l2.accesses",
    "l2.hits",
    "l2.misses",
    "dram.accesses",
    "dram.reads",
    "dram.writes",
)

CACHE_RW = policy_by_name("CacheRW")


def _partitioned_streams(scale=0.5):
    return [
        StreamConfig(workload="CM", scale=scale, cu_share="partitioned", label="cm"),
        StreamConfig(
            workload="FwLSTM", scale=scale, cu_share="partitioned", label="lstm"
        ),
    ]


def _monolithic(streams, config):
    session = SimulationSession(policy=CACHE_RW, config=config, streams=streams)
    session.begin()
    session.sim.run()
    return session.finish().to_dict()


class TestStreamsAxis:
    def test_traffic_totals_are_conserved_exactly(self):
        streams = _partitioned_streams()
        config = scaled_config(8)
        mono = _monolithic(streams, config)
        sharded = simulate(
            policy=CACHE_RW,
            config=config,
            streams=streams,
            shards=ShardConfig(num_shards=2, axis="streams"),
        ).to_dict()
        for name in CONSERVED:
            assert sharded["counters"].get(name, 0) == mono["counters"].get(name, 0), name
        # merged cycle count is the slowest shard's clock; isolation can
        # shift it slightly but not structurally
        assert sharded["cycles"] == pytest.approx(mono["cycles"], rel=0.02)
        assert sharded["counters"]["shard.count"] == 2
        # both tenants' per-stream counters survive, remapped to their
        # global indices
        for stream_index in (0, 1):
            assert f"stream{stream_index}.kernels_launched" in sharded["counters"]

    def test_epoch_barriers_do_not_change_the_answer(self):
        """A tiny epoch forces many synchronization rounds; the merged
        totals must not depend on the barrier cadence."""
        streams = _partitioned_streams()
        config = scaled_config(8)
        coarse = simulate(
            policy=CACHE_RW,
            config=config,
            streams=streams,
            shards=ShardConfig(num_shards=2, axis="streams"),
        ).to_dict()
        fine = simulate(
            policy=CACHE_RW,
            config=config,
            streams=streams,
            shards=ShardConfig(num_shards=2, axis="streams", epoch_cycles=5_000),
        ).to_dict()
        assert fine["counters"]["shard.epochs"] > coarse["counters"]["shard.epochs"]
        assert fine["cycles"] == coarse["cycles"]
        for name in CONSERVED:
            assert fine["counters"].get(name, 0) == coarse["counters"].get(name, 0)

    def test_sampling_composes_with_sharding(self):
        streams = [
            StreamConfig(
                workload="FwLSTM", scale=1.0, cu_share="partitioned", label=f"s{i}"
            )
            for i in range(2)
        ]
        report = simulate(
            policy=CACHE_RW,
            config=scaled_config(8),
            streams=streams,
            sampling=SamplingConfig(),
            shards=ShardConfig(num_shards=2, axis="streams"),
        ).to_dict()
        summary = report["sampling"]
        assert summary["mode"] == "phase_sampled+sharded"
        assert summary["skipped_kernels"] > 0
        assert summary["represented_events"] > summary["executed_events"]


class TestDevicesAxis:
    def test_work_totals_are_conserved_across_device_shards(self):
        workload = get_workload("FwLSTM", scale=1.0)
        topology = TOPOLOGIES["dual-chiplet"]
        config = scaled_config(8)
        mono = simulate(workload, CACHE_RW, config=config, topology=topology).to_dict()
        sharded = simulate(
            get_workload("FwLSTM", scale=1.0),
            CACHE_RW,
            config=config,
            topology=topology,
            shards=ShardConfig(num_shards=2, axis="devices"),
        ).to_dict()
        # the trace-driven totals are fixed by the workload, however the
        # wavefronts are placed
        for name in ("gpu.vector_ops", "gpu.mem_requests"):
            assert sharded["counters"].get(name, 0) == mono["counters"].get(name, 0)
        assert sharded["counters"]["shard.count"] == 2


class TestShardValidation:
    def test_rejects_shared_dispatch_streams(self):
        streams = [
            StreamConfig(workload="CM", scale=0.2),
            StreamConfig(workload="FwLSTM", scale=0.2),
        ]
        with pytest.raises(ValueError, match="partitioned"):
            run_sharded(
                policy=CACHE_RW,
                streams=streams,
                shards=ShardConfig(num_shards=2, axis="streams"),
            )

    def test_rejects_more_shards_than_streams(self):
        with pytest.raises(ValueError, match="at least one stream"):
            run_sharded(
                policy=CACHE_RW,
                streams=_partitioned_streams(),
                shards=ShardConfig(num_shards=3, axis="streams"),
            )

    def test_rejects_indivisible_cu_partition(self):
        streams = [
            StreamConfig(
                workload="CM", scale=0.2, cu_share="partitioned", label=f"s{i}"
            )
            for i in range(3)
        ]
        with pytest.raises(ValueError, match="divide"):
            run_sharded(
                policy=CACHE_RW,
                config=scaled_config(8),
                streams=streams,
                shards=ShardConfig(num_shards=3, axis="streams"),
            )

    def test_rejects_wrong_shard_count_for_devices(self):
        with pytest.raises(ValueError, match="one shard per device"):
            run_sharded(
                get_workload("FwLSTM", scale=0.5),
                CACHE_RW,
                topology=TOPOLOGIES["dual-chiplet"],
                shards=ShardConfig(num_shards=3, axis="devices"),
            )

    def test_rejects_sharding_both_seams_at_once(self):
        with pytest.raises(ValueError, match="one seam"):
            run_sharded(
                policy=CACHE_RW,
                streams=_partitioned_streams(),
                topology=TOPOLOGIES["dual-chiplet"],
                shards=ShardConfig(num_shards=2),
            )


class TestShardFailureRecords:
    def test_worker_failure_surfaces_structured_job_failures(self):
        """A shard that cannot even build its session (unknown workload
        name) fails the begin barrier with the sweep-backend failure
        contract: structured records, not a bare traceback."""
        streams = [
            StreamConfig(
                workload="NoSuchWorkload",
                scale=0.5,
                cu_share="partitioned",
                label="bogus",
            ),
            StreamConfig(
                workload="CM", scale=0.5, cu_share="partitioned", label="cm"
            ),
        ]
        with pytest.raises(ShardExecutionError) as excinfo:
            run_sharded(
                policy=CACHE_RW,
                streams=streams,
                shards=ShardConfig(num_shards=2, axis="streams"),
            )
        failures = excinfo.value.failures
        assert len(failures) == 1
        failure = failures[0]
        assert "NoSuchWorkload" in failure.error
        assert failure.fingerprint
        assert failure.attempts == 1
        assert failure.job  # human-readable shard description
