"""Integration tests for the experiment drivers, renderers and the CLI."""

from __future__ import annotations

import json

import pytest

from repro.config import scaled_config
from repro.core.policies import STATIC_POLICIES, UNCACHED
from repro.experiments import (
    ExperimentRunner,
    figure4_gvops,
    figure5_gmrs,
    figure6_execution_time,
    figure7_dram_accesses,
    figure8_cache_stalls,
    figure9_row_hit_rate,
    figure10_execution_time,
    figure11_dram_accesses,
    figure12_cache_stalls,
    figure13_row_hit_rate,
    optimization_sweep,
    render_series_table,
    static_policy_sweep,
    table1_system_configuration,
    table2_workloads,
)
from repro.experiments.optimizations import STATIC_BEST, STATIC_WORST
from repro.experiments.render import render_kv_table
from repro.experiments.static_policies import measured_categories
from repro import cli

#: a small but behaviourally diverse subset keeps integration tests fast
SUBSET = ("FwSoft", "FwAct", "SGEMM")
TINY = scaled_config(2)


@pytest.fixture(scope="module")
def runner() -> ExperimentRunner:
    return ExperimentRunner(scale=0.15, config=TINY, workload_names=SUBSET)


@pytest.fixture(scope="module")
def static_sweep(runner):
    return static_policy_sweep(runner)


@pytest.fixture(scope="module")
def full_sweep(runner):
    return optimization_sweep(runner)


class TestRunner:
    def test_sweep_covers_grid(self, static_sweep):
        assert set(static_sweep.workloads()) == set(SUBSET)
        assert set(static_sweep.policies()) == {p.name for p in STATIC_POLICIES}

    def test_runs_are_memoized(self, runner, static_sweep):
        before = runner.cached_runs()
        runner.sweep(policies=STATIC_POLICIES)
        assert runner.cached_runs() == before

    def test_comparison_for_unknown_workload_raises(self, static_sweep):
        with pytest.raises(KeyError):
            static_sweep.comparison("NotAWorkload")


class TestStaticFigures:
    def test_figure6_normalizes_to_uncached(self, static_sweep):
        data = figure6_execution_time(sweep=static_sweep)
        for workload, series in data.items():
            assert series[UNCACHED.name] == pytest.approx(1.0)
            assert set(series) == {p.name for p in STATIC_POLICIES}

    def test_figure7_values_are_fractions_of_uncached(self, static_sweep):
        data = figure7_dram_accesses(sweep=static_sweep)
        for series in data.values():
            assert series[UNCACHED.name] == pytest.approx(1.0)
            assert all(value >= 0 for value in series.values())

    def test_figure8_uncached_has_fewest_stalls(self, static_sweep):
        data = figure8_cache_stalls(sweep=static_sweep)
        for series in data.values():
            assert series[UNCACHED.name] <= min(series.values()) + 1e-9

    def test_figure9_rates_are_probabilities(self, static_sweep):
        data = figure9_row_hit_rate(sweep=static_sweep)
        for series in data.values():
            assert all(0.0 <= value <= 1.0 for value in series.values())

    def test_measured_categories_cover_subset(self, static_sweep):
        categories = measured_categories(static_sweep)
        assert set(categories) == set(SUBSET)

    def test_characterization_figures(self, runner):
        gvops = figure4_gvops(runner)
        gmrs = figure5_gmrs(runner)
        assert set(gvops) == set(SUBSET)
        assert all(row["GVOPS"] >= 0 for row in gvops.values())
        assert all(row["GMR/s"] > 0 for row in gmrs.values())


class TestOptimizationFigures:
    def test_figure10_series_and_baseline(self, full_sweep):
        data = figure10_execution_time(sweep=full_sweep)
        for series in data.values():
            assert series[STATIC_BEST] == pytest.approx(1.0)
            assert series[STATIC_WORST] >= series[STATIC_BEST] - 1e-9
            assert "CacheRW-PCby" in series

    def test_figure11_normalized_to_uncached(self, full_sweep):
        data = figure11_dram_accesses(sweep=full_sweep)
        for series in data.values():
            assert all(value >= 0 for value in series.values())

    def test_figure12_and_13_shapes(self, full_sweep):
        stalls = figure12_cache_stalls(sweep=full_sweep)
        rows = figure13_row_hit_rate(sweep=full_sweep)
        assert set(stalls) == set(SUBSET) and set(rows) == set(SUBSET)
        for series in rows.values():
            assert all(0.0 <= value <= 1.0 for value in series.values())


class TestTablesAndRendering:
    def test_table1_contains_both_configurations(self):
        tables = table1_system_configuration()
        assert "simulated" in tables and "paper" in tables
        assert tables["paper"]["# of CUs"] == "64"

    def test_table2_lists_all_workloads(self):
        rows = table2_workloads(scale=0.1)
        assert len(rows) == 18

    def test_render_series_table_contains_all_cells(self):
        data = {"FwAct": {"A": 1.0, "B": 2.0}, "SGEMM": {"A": 0.5, "B": 0.25}}
        text = render_series_table("Title", data)
        assert "Title" in text and "FwAct" in text and "0.250" in text

    def test_render_handles_missing_series(self):
        text = render_series_table("T", {"W": {"A": 1.0}}, series=["A", "B"])
        assert "-" in text

    def test_render_kv_table(self):
        text = render_kv_table("Config", {"# of CUs": 8})
        assert "# of CUs" in text and "8" in text

    def test_render_empty_data(self):
        assert "(no data)" in render_series_table("T", {})


class TestCli:
    def test_list_command(self, capsys):
        assert cli.main(["list"]) == 0
        output = capsys.readouterr().out
        assert "FwAct" in output and "CacheRW-PCby" in output

    def test_run_command_json(self, capsys):
        code = cli.main(["--scale", "0.1", "--cus", "2", "run", "--workload", "FwSoft",
                         "--policy", "CacheR", "--json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["workload"] == "FwSoft"
        assert data["policy"] == "CacheR"
        assert data["cycles"] > 0

    def test_sweep_command(self, capsys):
        code = cli.main(["--scale", "0.1", "--cus", "2", "sweep", "--workload", "FwSoft",
                         "--policies", "Uncached", "CacheR"])
        assert code == 0
        output = capsys.readouterr().out
        assert "FwSoft" in output and "CacheR" in output

    def test_figure_command_with_subset(self, capsys):
        code = cli.main(["--scale", "0.1", "--cus", "2", "figure", "6",
                         "--workloads", "FwSoft"])
        assert code == 0
        assert "Figure 6" in capsys.readouterr().out

    def test_table_commands(self, capsys):
        assert cli.main(["table", "1"]) == 0
        assert "Table 1" in capsys.readouterr().out
        assert cli.main(["--scale", "0.1", "table", "2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_unknown_workload_is_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            cli.main(["run", "--workload", "Nope", "--policy", "CacheR"])

    def test_list_json_includes_fault_plans(self, capsys):
        assert cli.main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "fault_plans" in payload
        assert "device-outage" in payload["fault_plans"]
        assert payload["fault_plans"]["tenant-churn"]["events"]

    def test_faults_command_writes_artifact_and_warm_store_is_free(
        self, capsys, tmp_path
    ):
        """The chaos sweep is cacheable: a warm repeat simulates nothing."""
        out = str(tmp_path / "resilience_figure.json")
        args = [
            "--scale", "0.1", "--cus", "2", "faults",
            "--mix", "mha+fwlstm", "--policies", "CacheRW",
            "--plans", "tenant-churn",
            "--cache-dir", str(tmp_path / "store"),
            "--json-out", out,
            "--checkpoint", str(tmp_path / "sweep.ckpt"),
        ]
        assert cli.main(args) == 0
        captured = capsys.readouterr()
        assert "simulated=2" in captured.err  # baseline + churn cell
        blob = json.loads(open(out, encoding="utf-8").read())
        assert blob["schema"] == 1
        cells = blob["figure_resilience"]["mha+fwlstm"]
        assert cells["CacheRW@tenant-churn"]["availability"] < 1.0
        assert cells["CacheRW@none"]["availability"] == 1.0

        assert cli.main(args) == 0
        captured = capsys.readouterr()
        assert "simulated=0" in captured.err and "loaded=2" in captured.err

    def test_faults_device_plan_on_single_topology_exits_2(self, capsys):
        code = cli.main(
            ["faults", "--topology", "single", "--plans", "device-outage",
             "--no-cache"]
        )
        assert code == 2
        assert "devices" in capsys.readouterr().err
