"""End-to-end telemetry: observers never perturb results, and their
artifacts are exact.

The acceptance contract pinned here:

* a run with tracing/metrics/profiling enabled reports counter-for-counter
  the same results as a disabled run (observers only read);
* the metrics windows tile the run and their deltas sum exactly to the
  end-of-run counters;
* the trace is valid Chrome trace-event JSON whose span population matches
  the run's counters (kernels completed, wavefronts started), and its
  degraded spans cover exactly ``faults.degraded_cycles``;
* metrics windows survive the report's serialization round-trip;
* the profiled event loop executes the exact same event sequence.
"""

from __future__ import annotations

import json

import pytest

from repro import cli
from repro.config import scaled_config
from repro.faults import fault_plan_by_name
from repro.session import SimulationSession
from repro.stats.report import RunReport
from repro.streams import mix_by_name
from repro.telemetry import TelemetryConfig, trace_errors, windows_total
from repro.topology import topology_by_name
from repro.workloads.registry import get_workload

CONFIG = scaled_config(2)
SCALE = 0.1
FULL_TELEMETRY = TelemetryConfig(trace=True, metrics_interval=2000, profile=True)


def _run(workload: str = "FwSoft", telemetry: TelemetryConfig | None = None):
    session = SimulationSession(
        policy="CacheRW", config=CONFIG, telemetry=telemetry
    )
    report = session.run(get_workload(workload, scale=SCALE))
    return session, report


class TestObserversDoNotPerturb:
    def test_full_telemetry_is_bit_identical(self):
        _, baseline = _run()
        _, observed = _run(telemetry=FULL_TELEMETRY)
        assert observed.cycles == baseline.cycles
        assert observed.counters == baseline.counters

    def test_disabled_config_attaches_nothing(self):
        session, _ = _run(telemetry=TelemetryConfig())
        assert session.recorder is None
        assert session.sampler is None
        assert session.profiler is None

    def test_faulted_serving_run_is_bit_identical(self):
        def run(telemetry):
            session = SimulationSession(
                policy="CacheRW",
                config=CONFIG,
                streams=mix_by_name("mha+fwlstm").scaled(SCALE),
                topology=topology_by_name("dual-chiplet"),
                faults=fault_plan_by_name("link-brownout"),
                telemetry=telemetry,
            )
            return session, session.run()

        _, baseline = run(None)
        session, observed = run(FULL_TELEMETRY)
        assert observed.cycles == baseline.cycles
        assert observed.counters == baseline.counters
        assert session.recorder is not None


class TestMetricsExactness:
    def test_windows_sum_to_report_counters(self):
        session, report = _run(telemetry=TelemetryConfig(metrics_interval=1500))
        assert report.metrics  # at least one window
        assert windows_total(report.metrics) == report.counters
        # windows tile [0, final] contiguously
        assert report.metrics[0]["start"] == 0
        for previous, current in zip(report.metrics, report.metrics[1:]):
            assert current["start"] == previous["end"]
        assert report.metrics[-1]["end"] >= report.cycles

    def test_metrics_round_trip_through_serialization(self):
        _, report = _run(telemetry=TelemetryConfig(metrics_interval=1500))
        rebuilt = RunReport.from_dict(json.loads(json.dumps(report.to_dict())))
        assert rebuilt.metrics == report.metrics
        assert windows_total(rebuilt.metrics) == rebuilt.counters

    def test_plain_report_has_no_metrics_key(self):
        _, report = _run()
        assert report.metrics == []
        assert "metrics" not in report.to_dict()


class TestTraceContents:
    def test_trace_valid_and_span_population_matches_counters(self):
        session, report = _run(telemetry=FULL_TELEMETRY)
        recorder = session.recorder
        blob = recorder.to_dict()
        assert trace_errors(blob) == []
        assert len(recorder.spans("kernel")) == report.counters["gpu.kernels_completed"]
        assert (
            len(recorder.spans("wavefront"))
            == report.counters["gpu.wavefronts_started"]
        )
        # spans stay inside the run and never extend past completion
        for span in recorder.spans():
            assert span["ts"] >= 0
            assert span["ts"] + span["dur"] <= report.cycles

    def test_degraded_spans_cover_exactly_degraded_cycles(self):
        session = SimulationSession(
            policy="CacheRW",
            config=CONFIG,
            streams=mix_by_name("mha+fwlstm").scaled(SCALE),
            topology=topology_by_name("dual-chiplet"),
            faults=fault_plan_by_name("link-brownout"),
            telemetry=TelemetryConfig(trace=True),
        )
        report = session.run()
        degraded = report.counters.get("faults.degraded_cycles", 0)
        assert degraded > 0  # the brownout plan must actually degrade
        assert session.recorder.degraded_span_cycles() == degraded
        assert trace_errors(session.recorder.to_dict()) == []

    def test_serving_trace_has_one_row_per_stream(self):
        session = SimulationSession(
            policy="CacheRW",
            config=CONFIG,
            streams=mix_by_name("mha+fwlstm").scaled(SCALE),
            telemetry=TelemetryConfig(trace=True),
        )
        session.run()
        kernel_rows = {span["tid"] for span in session.recorder.spans("kernel")}
        assert kernel_rows == {0, 1}


class TestProfiler:
    def test_profiler_accounts_every_event(self):
        session, _ = _run(telemetry=TelemetryConfig(profile=True))
        profiler = session.profiler
        assert profiler.events == session.sim.queue.executed
        assert profiler.wall_seconds > 0
        summary = profiler.summary()
        assert summary["events"] == profiler.events
        assert sum(c["events"] for c in summary["components"]) == profiler.events


class TestCliTelemetry:
    def test_trace_subcommand_writes_valid_artifacts(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        telemetry_path = tmp_path / "telemetry.json"
        code = cli.main([
            "--scale", "0.1", "--cus", "2",
            "trace", "--workload", "FwSoft",
            "--metrics-interval", "2000",
            "--out", str(trace_path),
            "--telemetry-out", str(telemetry_path),
            "--json",
        ])
        assert code == 0
        blob = json.loads(trace_path.read_text())
        assert trace_errors(blob) == []
        assert blob["otherData"]["metricsWindows"]
        telemetry = json.loads(telemetry_path.read_text())
        assert telemetry["command"] == "trace"
        assert telemetry["profiler"]["events"] > 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["kernel_spans"] >= 1
        assert summary["mem_latency_p50"] <= summary["mem_latency_p99"]

    def test_run_trace_out_and_metrics(self, tmp_path, capsys):
        trace_path = tmp_path / "run-trace.json"
        code = cli.main([
            "--scale", "0.1", "--cus", "2",
            "run", "--workload", "FwSoft", "--policy", "CacheRW",
            "--trace-out", str(trace_path),
            "--metrics-interval", "2000", "--json",
        ])
        assert code == 0
        assert trace_errors(json.loads(trace_path.read_text())) == []
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]
        assert windows_total(payload["metrics"])

    def test_run_without_telemetry_flags_matches_plain_run(self, capsys):
        argv = ["--scale", "0.1", "--cus", "2",
                "run", "--workload", "FwSoft", "--policy", "CacheRW", "--json"]
        assert cli.main(argv) == 0
        plain = json.loads(capsys.readouterr().out)
        assert "metrics" not in plain

    def test_trace_rejects_unhostable_plan(self, tmp_path, capsys):
        # device-outage needs a spare device; the single topology has none
        code = cli.main([
            "--scale", "0.1", "--cus", "2",
            "trace", "--mix", "mha+fwlstm", "--plan", "device-outage",
            "--topology", "single",
            "--out", str(tmp_path / "t.json"),
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_metrics_interval_must_be_non_negative(self):
        with pytest.raises(SystemExit):
            cli.main([
                "run", "--workload", "FwSoft", "--policy", "CacheRW",
                "--metrics-interval", "-5",
            ])

    def test_serve_traced_replay(self, tmp_path):
        trace_path = tmp_path / "serve.json"
        telemetry_path = tmp_path / "exec.json"
        code = cli.main([
            "--scale", "0.1", "--cus", "2", "--no-cache",
            "serve", "--mix", "mha+fwlstm", "--policies", "CacheRW",
            "--cu-partition", "shared",
            "--trace-out", str(trace_path),
            "--metrics-interval", "2000",
            "--telemetry-out", str(telemetry_path),
        ])
        assert code == 0
        blob = json.loads(trace_path.read_text())
        assert trace_errors(blob) == []
        assert blob["otherData"]["metricsWindows"]
        executor = json.loads(telemetry_path.read_text())["executor"]
        assert executor["runs_simulated"] > 0
        assert executor["jobs_timed"] == executor["runs_simulated"]
        assert 0.0 <= executor["worker_utilization"] <= 1.0

    def test_faults_traced_replay_shows_degradation(self, tmp_path):
        trace_path = tmp_path / "faults.json"
        code = cli.main([
            "--scale", "0.1", "--cus", "2", "--no-cache",
            "faults", "--mix", "mha+fwlstm", "--plans", "link-brownout",
            "--policies", "CacheRW",
            "--trace-out", str(trace_path),
        ])
        assert code == 0
        blob = json.loads(trace_path.read_text())
        assert trace_errors(blob) == []
        degraded = [
            event for event in blob["traceEvents"]
            if event.get("name") == "degraded" and event.get("ph") == "X"
        ]
        assert degraded and all(event["dur"] > 0 for event in degraded)
