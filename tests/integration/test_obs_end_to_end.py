"""End-to-end pins for the cross-run observability layer.

Three contracts, each exercised on real simulations:

* **bit-identity** -- attaching the observability layer (ledger append,
  anomaly detection, or both) to a session must leave the simulated
  results counter-for-counter identical to a plain run; a disabled
  ``ObsConfig`` must keep the serialized report blob byte-identical too.
* **zero drift** -- two runs of the same spec produce the same
  fingerprint, and ``diff`` over their ledger entries reports
  ``identical`` with zero changed counters (exit 0 under
  ``--fail-on-drift``).
* **CLI round trip** -- ``run --ledger`` feeds ``ledger list/show``,
  ``diff`` and ``bench record/check`` work through ``main()`` with real
  exit codes.
"""

from __future__ import annotations

import json

import pytest

from repro import cli
from repro.config import scaled_config
from repro.obs import (
    AlertConfig,
    BenchMeasurement,
    ObsConfig,
    RunLedger,
    append_history,
)
from repro.session import SimulationSession
from repro.workloads.registry import get_workload

CONFIG = scaled_config(2)
SCALE = 0.1


def _run(obs: ObsConfig | None = None, workload: str = "FwSoft"):
    session = SimulationSession(policy="CacheRW", config=CONFIG, obs=obs)
    report = session.run(get_workload(workload, scale=SCALE))
    return session, report


class TestObsBitIdentity:
    def test_full_obs_run_is_counter_identical(self, tmp_path):
        _, baseline = _run()
        obs = ObsConfig(
            ledger_path=str(tmp_path / "ledger.jsonl"), alerts=AlertConfig()
        )
        _, observed = _run(obs=obs)
        assert observed.cycles == baseline.cycles
        assert observed.counters == baseline.counters

    def test_disabled_obs_blob_is_byte_identical(self):
        _, baseline = _run()
        _, observed = _run(obs=ObsConfig())
        assert json.dumps(observed.to_dict(), sort_keys=True) == json.dumps(
            baseline.to_dict(), sort_keys=True
        )

    def test_ledger_only_obs_adds_no_report_keys(self, tmp_path):
        _, baseline = _run()
        _, observed = _run(obs=ObsConfig(ledger_path=str(tmp_path / "l.jsonl")))
        assert observed.to_dict() == baseline.to_dict()


class TestLedgerZeroDrift:
    def test_same_spec_runs_share_fingerprint_and_diff_clean(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        obs = ObsConfig(ledger_path=str(path))
        _run(obs=obs)
        _run(obs=obs)

        ledger = RunLedger(path)
        entries = ledger.entries()
        assert len(entries) == 2
        assert entries[0]["fingerprint"] == entries[1]["fingerprint"]
        assert entries[0]["kind"] == "run"
        assert entries[0]["counters"] == entries[1]["counters"]
        assert entries[0]["digests"] == entries[1]["digests"]

    def test_different_policy_changes_fingerprint(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        obs = ObsConfig(ledger_path=str(path))
        _run(obs=obs)
        session = SimulationSession(policy="CacheR", config=CONFIG, obs=obs)
        session.run(get_workload("FwSoft", scale=SCALE))
        a, b = RunLedger(path).entries()
        assert a["fingerprint"] != b["fingerprint"]


def _cli_run(ledger_path, extra=()):
    return cli.main(
        [
            "--scale",
            str(SCALE),
            "--cus",
            "2",
            "run",
            "--workload",
            "FwSoft",
            "--policy",
            "CacheRW",
            "--ledger",
            str(ledger_path),
            *extra,
        ]
    )


class TestCliLedgerAndDiff:
    def test_run_ledger_list_show_diff(self, tmp_path, capsys):
        ledger_path = tmp_path / "ledger.jsonl"
        assert _cli_run(ledger_path) == 0
        assert _cli_run(ledger_path) == 0
        capsys.readouterr()

        assert cli.main(["ledger", "list", "--ledger", str(ledger_path)]) == 0
        listing = capsys.readouterr().out
        assert "FwSoft" in listing and "CacheRW" in listing

        assert (
            cli.main(["ledger", "show", "-1", "--ledger", str(ledger_path), "--json"])
            == 0
        )
        entry = json.loads(capsys.readouterr().out)
        assert entry["kind"] == "run" and entry["workload"] == "FwSoft"
        assert entry["counters"]

        # the zero-drift contract: identical spec => identical counters
        code = cli.main(
            ["diff", "-1", "-2", "--ledger", str(ledger_path), "--fail-on-drift"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "identical" in out.lower()

        code = cli.main(
            ["diff", "-1", "-2", "--ledger", str(ledger_path), "--json"]
        )
        diff = json.loads(capsys.readouterr().out)
        assert code == 0
        assert diff["identical"] is True
        assert diff["counters"]["changed"] == 0

    def test_diff_detects_real_drift(self, tmp_path, capsys):
        ledger_path = tmp_path / "ledger.jsonl"
        assert _cli_run(ledger_path) == 0
        assert (
            cli.main(
                [
                    "--scale",
                    str(SCALE),
                    "--cus",
                    "2",
                    "run",
                    "--workload",
                    "FwSoft",
                    "--policy",
                    "CacheR",
                    "--ledger",
                    str(ledger_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = cli.main(
            ["diff", "-1", "-2", "--ledger", str(ledger_path), "--fail-on-drift"]
        )
        assert code == 1  # CacheR vs CacheRW genuinely drifts
        capsys.readouterr()

    def test_ledger_show_unknown_ref_exits_2(self, tmp_path, capsys):
        ledger_path = tmp_path / "ledger.jsonl"
        assert _cli_run(ledger_path) == 0
        capsys.readouterr()
        assert (
            cli.main(["ledger", "show", "feedbeef", "--ledger", str(ledger_path)]) == 2
        )
        capsys.readouterr()

    def test_ledger_prune_keep(self, tmp_path, capsys):
        ledger_path = tmp_path / "ledger.jsonl"
        for _ in range(3):
            assert _cli_run(ledger_path) == 0
        assert (
            cli.main(["ledger", "prune", "--ledger", str(ledger_path), "--keep", "1"])
            == 0
        )
        capsys.readouterr()
        assert len(RunLedger(ledger_path)) == 1


class TestCliAlerts:
    def test_run_alerts_json_reports_quiet_run(self, tmp_path, capsys):
        code = cli.main(
            [
                "--scale",
                str(SCALE),
                "--cus",
                "2",
                "run",
                "--workload",
                "FwSoft",
                "--policy",
                "CacheRW",
                "--alerts",
                "--json",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        payload = json.loads(captured.out)
        # a healthy single-tenant run fires nothing, and the quiet verdict
        # is announced on stderr, never stdout
        assert payload.get("alerts", []) == []
        assert "alerts" in captured.err

    def test_alerted_run_counters_match_plain_run(self, tmp_path, capsys):
        for extra in ((), ("--alerts",)):
            assert _cli_run(tmp_path / "ledger.jsonl", extra=extra) == 0
        capsys.readouterr()
        a, b = RunLedger(tmp_path / "ledger.jsonl").entries()
        assert a["fingerprint"] == b["fingerprint"]
        assert a["counters"] == b["counters"]


class TestCliBench:
    def test_record_then_check(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SAMPLES", "1")
        history = tmp_path / "history.jsonl"
        assert (
            cli.main(
                ["bench", "record", "--samples", "1", "--history", str(history), "--json"]
            )
            == 0
        )
        record = json.loads(capsys.readouterr().out)
        assert record["events_per_sec"] > 0
        assert history.exists()

        # judge the entry just recorded against the committed baseline only
        # (one sample of history is below min-history, so the MAD gate stays
        # unarmed); disable the flat gate so the check is hermetic on any
        # machine
        code = cli.main(
            [
                "bench",
                "check",
                "--use-last",
                "--history",
                str(history),
                "--max-regression",
                "0",
            ]
        )
        capsys.readouterr()
        assert code == 0

    def test_check_flags_a_collapse(self, tmp_path, capsys):
        history = tmp_path / "history.jsonl"
        # fabricate a stable history, then a collapsed final sample
        for seconds in (0.50, 0.51, 0.49, 0.50, 0.50, 5.0):
            append_history(
                history,
                BenchMeasurement(
                    benchmark="core_events_per_second",
                    events=100_000,
                    cycles=50_000,
                    seconds=(seconds,),
                ),
            )
        code = cli.main(
            [
                "bench",
                "check",
                "--use-last",
                "--history",
                str(history),
                "--max-regression",
                "0",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "robust history floor" in captured.err or "floor" in captured.err


class TestSweepLedger:
    def test_sweep_records_jobs_and_aggregate(self, tmp_path, capsys):
        ledger_path = tmp_path / "ledger.jsonl"
        code = cli.main(
            [
                "--scale",
                str(SCALE),
                "--cus",
                "2",
                "sweep",
                "--workload",
                "FwSoft",
                "--policies",
                "CacheR",
                "CacheRW",
                "--cache-dir",
                str(tmp_path / "store"),
                "--ledger",
                str(ledger_path),
            ]
        )
        capsys.readouterr()
        assert code == 0
        entries = RunLedger(ledger_path).entries()
        kinds = [entry["kind"] for entry in entries]
        assert kinds.count("job") == 2
        assert kinds.count("sweep") == 1
        sweep = [entry for entry in entries if entry["kind"] == "sweep"][-1]
        assert sweep["telemetry"]["runs_simulated"] == 2
        assert "worker_utilization" in sweep["telemetry"]

    def test_warm_sweep_skips_job_entries_but_logs_aggregate(self, tmp_path, capsys):
        ledger_path = tmp_path / "ledger.jsonl"
        argv = [
            "--scale",
            str(SCALE),
            "--cus",
            "2",
            "sweep",
            "--workload",
            "FwSoft",
            "--policies",
            "CacheRW",
            "--cache-dir",
            str(tmp_path / "store"),
            "--ledger",
            str(ledger_path),
        ]
        assert cli.main(list(argv)) == 0
        assert cli.main(list(argv)) == 0
        capsys.readouterr()
        entries = RunLedger(ledger_path).entries()
        # the warm pass replays from the store: job entries are only written
        # for *simulated* cells (the ledger already holds the cold pass), so
        # the second sweep contributes an aggregate entry only
        jobs = [entry for entry in entries if entry["kind"] == "job"]
        sweeps = [entry for entry in entries if entry["kind"] == "sweep"]
        assert len(jobs) == 1
        assert jobs[0]["fingerprint"]  # the store key doubles as identity
        assert len(sweeps) == 2
        assert sweeps[0]["telemetry"]["runs_simulated"] == 1
        assert sweeps[0]["telemetry"]["runs_loaded"] == 0
        assert sweeps[1]["telemetry"]["runs_simulated"] == 0
        assert sweeps[1]["telemetry"]["runs_loaded"] == 1
        assert sweeps[1]["telemetry"]["store_hit_rate"] == 1.0


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
