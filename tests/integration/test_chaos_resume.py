"""Chaos tests for the sweep execution layer itself.

The fault injector chaos-tests the *simulated* fleet; this module
chaos-tests the *real* execution layer that runs the sweeps:

* a sweep SIGKILLed mid-flight resumes from its checkpoint with zero
  re-simulation of the cells that had finished (the store plus the
  checkpoint together are crash-safe);
* a pool worker SIGKILLed mid-job poisons only one pool generation: the
  retry logic re-runs the unfinished jobs on a fresh pool and the batch
  completes with no failure records;
* a hung worker trips the batch timeout, is abandoned, and the retry
  completes the job;
* a writer crashing between the temp-file write and the atomic rename
  never leaves a torn or half-visible store entry;
* torn or alien checkpoint files are ignored, never trusted.

The worker-kill tests fork the test process, so they are skipped on
platforms whose multiprocessing start method is not ``fork``.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.config import scaled_config
from repro.core.policies import STATIC_POLICIES
from repro.experiments import jobs as jobs_module
from repro.experiments.jobs import (
    JobSpec,
    ProcessPoolBackend,
    SweepCheckpoint,
    SweepExecutor,
)
from repro.experiments.store import ResultStore
from repro.stats.report import RunReport

SRC = Path(__file__).resolve().parents[2] / "src"
TINY = scaled_config(2)

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method(allow_none=False) != "fork",
    reason="worker-kill chaos needs the fork start method",
)


def sweep_jobs() -> list[JobSpec]:
    """Six distinct cells, each heavy enough to leave a kill window."""
    return [
        JobSpec(workload=workload, policy=policy, scale=scale, config=TINY)
        for workload, scale in (("DGEMM", 0.5), ("FwLSTM", 0.1))
        for policy in STATIC_POLICIES
    ]


#: the child re-runs exactly the parent's sweep, then exits 0
_CHILD_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
from repro.config import scaled_config
from repro.core.policies import STATIC_POLICIES
from repro.experiments.jobs import JobSpec, SweepCheckpoint, SweepExecutor
from repro.experiments.store import ResultStore

TINY = scaled_config(2)
jobs = [
    JobSpec(workload=workload, policy=policy, scale=scale, config=TINY)
    for workload, scale in (("DGEMM", 0.5), ("FwLSTM", 0.1))
    for policy in STATIC_POLICIES
]
checkpoint = SweepCheckpoint({ckpt!r}, [job.fingerprint() for job in jobs])
executor = SweepExecutor(store=ResultStore({store!r}))
executor.run(jobs, checkpoint=checkpoint)
"""


class TestSigkillResume:
    def test_sigkilled_sweep_resumes_without_resimulating_warm_cells(self, tmp_path):
        store_dir = str(tmp_path / "store")
        ckpt = str(tmp_path / "sweep.ckpt")
        script = _CHILD_SCRIPT.format(src=str(SRC), ckpt=ckpt, store=store_dir)
        child = subprocess.Popen([sys.executable, "-c", script])
        try:
            # wait for the first completion, then kill without warning
            deadline = time.time() + 60.0
            done_before = 0
            while time.time() < deadline:
                if child.poll() is not None:
                    break  # finished everything before we could kill it
                try:
                    blob = json.loads(Path(ckpt).read_text())
                    done_before = len(blob["done"])
                except (OSError, ValueError, KeyError):
                    done_before = 0
                if done_before >= 1:
                    break
                time.sleep(0.02)
            assert done_before >= 1, "child never completed a single cell"
            if child.poll() is None:
                child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:  # pragma: no cover - cleanup on failure
                child.kill()
                child.wait()

        # the checkpoint on disk is valid JSON despite the kill (atomic
        # writes) and the resumed run loads every finished cell
        jobs = sweep_jobs()
        keys = [job.fingerprint() for job in jobs]
        checkpoint = SweepCheckpoint(ckpt, keys)
        assert checkpoint.resumed
        done_before = len(checkpoint.done)
        assert done_before >= 1

        executor = SweepExecutor(store=ResultStore(store_dir))
        reports = executor.run(jobs, checkpoint=checkpoint)
        assert len(reports) == len(jobs)
        # zero checkpointed (warm) cells re-simulate; the store may hold
        # one extra cell if the kill landed between a save and its
        # checkpoint mark, and that one is a free store hit too
        assert executor.stats.runs_loaded >= done_before, (
            "every checkpointed cell must come back as a store hit"
        )
        assert (
            executor.stats.runs_simulated
            == len(jobs) - executor.stats.runs_loaded
            <= len(jobs) - done_before
        ), "the resumed sweep must simulate only the missing cells"
        assert checkpoint.complete
        assert json.loads(Path(ckpt).read_text())["completed"] is True

    def test_completed_checkpoint_makes_rerun_free(self, tmp_path):
        jobs = sweep_jobs()[:2]
        keys = [job.fingerprint() for job in jobs]
        ckpt = str(tmp_path / "sweep.ckpt")
        store = ResultStore(tmp_path / "store")
        first = SweepExecutor(store=store)
        first.run(jobs, checkpoint=SweepCheckpoint(ckpt, keys))

        resumed = SweepCheckpoint(ckpt, keys)
        assert resumed.resumed and resumed.complete and resumed.remaining == 0
        second = SweepExecutor(store=store)
        second.run(jobs, checkpoint=resumed)
        assert second.stats.runs_simulated == 0


def _suicidal_payload(job):
    """First worker to run without the sentinel dies mid-job (SIGKILL)."""
    sentinel = Path(os.environ["CHAOS_SENTINEL"])
    if not sentinel.exists():
        sentinel.write_text("dead")
        os.kill(os.getpid(), signal.SIGKILL)
    return _real_payload(job)


_real_payload = jobs_module._execute_job_payload


def _hanging_payload(job):
    """The first worker generation hangs; later generations run clean."""
    sentinel = Path(os.environ["CHAOS_SENTINEL"])
    if not sentinel.exists():
        sentinel.write_text("hung")
        time.sleep(3.0)
    return _real_payload(job)


@fork_only
class TestWorkerChaos:
    def test_sigkilled_worker_is_retried_on_a_fresh_pool(
        self, tmp_path, monkeypatch
    ):
        """One murdered worker poisons one pool generation, not the sweep."""
        monkeypatch.setenv("CHAOS_SENTINEL", str(tmp_path / "sentinel"))
        monkeypatch.setattr(jobs_module, "_execute_job_payload", _suicidal_payload)
        jobs = [
            JobSpec(workload="FwSoft", policy=policy, scale=0.1, config=TINY)
            for policy in STATIC_POLICIES
        ]
        backend = ProcessPoolBackend(max_workers=2, retries=2, retry_backoff=0.0)
        reports = backend.run_jobs(jobs)
        assert len(reports) == len(jobs)
        assert backend.failures == []
        # bit-identical to an undisturbed run despite the murder
        expected = [_real_payload(job)["report"] for job in jobs]
        assert [r.to_dict() for r in reports] == expected

    def test_sigkilled_worker_without_retries_is_a_recorded_failure(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("CHAOS_SENTINEL", str(tmp_path / "sentinel"))
        monkeypatch.setattr(jobs_module, "_execute_job_payload", _suicidal_payload)
        jobs = [
            JobSpec(workload="FwSoft", policy=policy, scale=0.1, config=TINY)
            for policy in STATIC_POLICIES
        ]
        backend = ProcessPoolBackend(max_workers=2, retries=0)
        with pytest.raises(BaseException):
            backend.run_jobs(jobs)
        assert backend.failures, "a dead worker must leave failure records"
        for failure in backend.failures:
            assert failure.attempts == 1
            assert failure.error

    def test_hung_worker_trips_the_timeout_and_the_retry_completes(
        self, tmp_path, monkeypatch
    ):
        sentinel = tmp_path / "sentinel"
        monkeypatch.setenv("CHAOS_SENTINEL", str(sentinel))
        monkeypatch.setattr(jobs_module, "_execute_job_payload", _hanging_payload)
        jobs = [
            JobSpec(workload="FwSoft", policy=policy, scale=0.1, config=TINY)
            for policy in STATIC_POLICIES[:2]
        ]
        backend = ProcessPoolBackend(
            max_workers=2, timeout=0.75, retries=1, retry_backoff=0.0
        )
        reports = backend.run_jobs(jobs)
        assert len(reports) == len(jobs)
        assert backend.failures == []

    def test_hung_worker_without_retries_reports_a_timeout(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("CHAOS_SENTINEL", str(tmp_path / "sentinel"))
        monkeypatch.setattr(jobs_module, "_execute_job_payload", _hanging_payload)
        jobs = [
            JobSpec(workload="FwSoft", policy=policy, scale=0.1, config=TINY)
            for policy in STATIC_POLICIES[:2]
        ]
        backend = ProcessPoolBackend(max_workers=2, timeout=0.5, retries=0)
        with pytest.raises(BaseException):
            backend.run_jobs(jobs)
        assert backend.failures
        assert any("did not finish" in failure.error for failure in backend.failures)


class TestAtomicStoreWrites:
    def test_crash_between_write_and_rename_leaves_no_torn_entry(
        self, tmp_path, monkeypatch
    ):
        """A writer killed after the temp write but before the rename must
        leave the store exactly as it was: no entry, no orphan."""
        store = ResultStore(tmp_path)
        report = RunReport(workload="w", policy="p", cycles=123, counters={"a": 1})
        key = "deadbeef"

        real_replace = os.replace

        def killed_mid_write(src, dst):
            raise OSError("simulated SIGKILL between write and rename")

        monkeypatch.setattr(os, "replace", killed_mid_write)
        with pytest.raises(OSError, match="simulated"):
            store.save(key, report)
        monkeypatch.setattr(os, "replace", real_replace)

        assert store.load(key) is None
        assert list(store.keys()) == []
        assert store.stats()["stale_tmp"] == 0, "failed writes must clean up"
        # the store still works after the crash
        store.save(key, report)
        loaded = store.load(key)
        assert loaded is not None and loaded.to_dict() == report.to_dict()

    def test_orphaned_tmp_files_never_surface_as_entries(self, tmp_path):
        """A hard kill can orphan a temp file; it must stay invisible."""
        store = ResultStore(tmp_path)
        (tmp_path / ".tmp-orphan.json").write_text("{torn", encoding="utf-8")
        assert list(store.keys()) == []
        assert store.stats()["entries"] == 0
        assert store.stats()["stale_tmp"] == 1


class TestCheckpointRobustness:
    def test_torn_checkpoint_is_ignored(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        path.write_text("{torn json", encoding="utf-8")
        checkpoint = SweepCheckpoint(path, ["k1", "k2"])
        assert not checkpoint.resumed and checkpoint.done == set()

    def test_checkpoint_of_a_different_sweep_is_ignored(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        first = SweepCheckpoint(path, ["a1", "a2"])
        first.mark_done("a1")
        second = SweepCheckpoint(path, ["b1", "b2"])
        assert not second.resumed and second.done == set()

    def test_checkpoint_drops_keys_the_new_sweep_does_not_have(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        checkpoint = SweepCheckpoint(path, ["k1", "k2"])
        checkpoint.mark_done("k1")
        blob = json.loads(path.read_text())
        blob["done"].append("k1")  # duplicate entries must not double-count
        path.write_text(json.dumps(blob), encoding="utf-8")
        resumed = SweepCheckpoint(path, ["k1", "k2"])
        assert resumed.resumed and resumed.done == {"k1"}
        assert resumed.remaining == 1

    def test_checkpoint_write_is_atomic_and_fsynced(self, tmp_path):
        checkpoint = SweepCheckpoint(tmp_path / "sweep.ckpt", ["k1"])
        checkpoint.mark_done("k1")
        blob = json.loads((tmp_path / "sweep.ckpt").read_text())
        assert blob["completed"] is True and blob["done"] == ["k1"]
        assert not list(tmp_path.glob("*.tmp")), "no temp files left behind"
