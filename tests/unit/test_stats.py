"""Tests for the statistics collector, run reports and comparisons."""

from __future__ import annotations

import pytest

from repro.config import default_config
from repro.stats.comparison import PolicyComparison, normalize_to, static_best, static_worst
from repro.stats.counters import StatsCollector
from repro.stats.report import RunReport


class TestStatsCollector:
    def test_add_and_get(self):
        stats = StatsCollector()
        stats.add("l1.hits")
        stats.add("l1.hits", 4)
        assert stats.get("l1.hits") == 5
        assert stats.get("missing") == 0

    def test_set_overrides(self):
        stats = StatsCollector()
        stats.add("x", 10)
        stats.set("x", 3)
        assert stats.get("x") == 3

    def test_matching_prefix(self):
        stats = StatsCollector()
        stats.add("l1.hits", 1)
        stats.add("l1.misses", 2)
        stats.add("l2.hits", 3)
        assert stats.matching("l1.") == {"l1.hits": 1, "l1.misses": 2}

    def test_sum(self):
        stats = StatsCollector()
        stats.add("a", 1)
        stats.add("b", 2)
        assert stats.sum(["a", "b", "c"]) == 3

    def test_histograms(self):
        stats = StatsCollector()
        for value in (10, 10, 20):
            stats.observe("latency", value)
        assert stats.histogram("latency") == {10: 2, 20: 1}
        assert stats.histogram_mean("latency") == pytest.approx(40 / 3)
        assert stats.histogram_mean("missing") == 0.0

    def test_histogram_percentile_nearest_rank(self):
        stats = StatsCollector()
        for value, count in ((10, 50), (20, 45), (100, 5)):
            for _ in range(count):
                stats.observe("lat", value)
        assert stats.histogram_percentile("lat", 0) == 10.0
        assert stats.histogram_percentile("lat", 50) == 10.0
        assert stats.histogram_percentile("lat", 95) == 20.0
        assert stats.histogram_percentile("lat", 99) == 100.0
        assert stats.histogram_percentile("lat", 100) == 100.0

    def test_histogram_percentile_is_an_observed_value(self):
        stats = StatsCollector()
        for value in (1, 9):
            stats.observe("lat", value)
        # nearest-rank never interpolates between observations
        assert stats.histogram_percentile("lat", 50) == 1.0
        assert stats.histogram_percentile("lat", 51) == 9.0

    def test_histogram_percentile_bounds_and_empty(self):
        stats = StatsCollector()
        assert stats.histogram_percentile("missing", 99) == 0.0
        with pytest.raises(ValueError):
            stats.histogram_percentile("missing", 101)
        with pytest.raises(ValueError):
            stats.histogram_percentile("missing", -0.1)

    def test_histogram_summary(self):
        stats = StatsCollector()
        for value in (10, 10, 20, 40):
            stats.observe("lat", value)
        summary = stats.histogram_summary("lat")
        assert summary == {
            "count": 4.0,
            "mean": 20.0,
            "p50": 10.0,
            "p95": 40.0,
            "p99": 40.0,
            "max": 40.0,
        }
        empty = stats.histogram_summary("missing")
        assert set(empty) == set(summary)
        assert all(value == 0.0 for value in empty.values())

    def test_snapshot_and_delta(self):
        stats = StatsCollector()
        stats.add("x", 5)
        snap = stats.snapshot()
        stats.add("x", 2)
        stats.add("y", 1)
        assert stats.delta_since(snap) == {"x": 2, "y": 1}

    def test_merge(self):
        a, b = StatsCollector(), StatsCollector()
        a.add("x", 1)
        b.add("x", 2)
        b.observe("h", 5)
        a.merge(b)
        assert a.get("x") == 3
        assert a.histogram("h") == {5: 1}


class TestCounterHandles:
    def test_handle_increments_shared_counter(self):
        stats = StatsCollector()
        handle = stats.counter("l1.hits")
        handle.add()
        handle.add(4)
        assert stats.get("l1.hits") == 5
        assert stats.counters() == {"l1.hits": 5}

    def test_same_name_resolves_to_same_handle(self):
        # per-CU L1 caches all resolve "l1.*" handles; they must aggregate
        stats = StatsCollector()
        a = stats.counter("l1.hits")
        b = stats.counter("l1.hits")
        assert a is b
        a.add(2)
        b.add(3)
        assert stats.get("l1.hits") == 5

    def test_handles_interoperate_with_named_api(self):
        stats = StatsCollector()
        handle = stats.counter("x")
        stats.add("x", 2)
        handle.add(3)
        assert stats.get("x") == 5
        stats.set("x", 1)
        assert handle.value == 1

    def test_resolved_but_unwritten_counters_are_invisible(self):
        # pre-registering handles in __init__ must not change report
        # contents versus the old lazily-created counters
        stats = StatsCollector()
        stats.counter("l1.rinse_writebacks")
        stats.add("l1.hits")
        assert stats.counters() == {"l1.hits": 1}
        assert stats.snapshot() == {"l1.hits": 1}
        assert stats.matching("l1.") == {"l1.hits": 1}
        assert stats.get("l1.rinse_writebacks", default=7) == 7

    def test_zero_amount_write_makes_counter_visible(self):
        # invalidate_clean adds 0 when nothing was dropped; the counter
        # still appears, exactly as the defaultdict behaviour did
        stats = StatsCollector()
        stats.counter("l1.self_invalidations").add(0)
        assert stats.counters() == {"l1.self_invalidations": 0}

    def test_merge_ignores_unwritten_handles(self):
        a, b = StatsCollector(), StatsCollector()
        b.counter("never_written")
        b.add("x", 2)
        a.merge(b)
        assert a.counters() == {"x": 2}

    def test_delta_since_with_handles(self):
        stats = StatsCollector()
        handle = stats.counter("x")
        handle.add(5)
        snap = stats.snapshot()
        handle.add(2)
        stats.counter("y")  # resolved, never written: not in the delta
        stats.add("z", 1)
        assert stats.delta_since(snap) == {"x": 2, "z": 1}

    def test_histogram_handle_is_live_view(self):
        stats = StatsCollector()
        handle = stats.histogram_handle("lat")
        handle[10] += 1
        stats.observe("lat", 10)
        handle[20] += 1
        assert stats.histogram("lat") == {10: 2, 20: 1}


def _report(policy: str, cycles: int, **counters) -> RunReport:
    base = {
        "gpu.mem_requests": 1000,
        "gpu.vector_ops": 2000,
        "dram.accesses": 500,
        "dram.reads": 300,
        "dram.writes": 200,
        "dram.row_hits": 400,
        "l1.stall_cycles": 100,
        "l2.stall_cycles": 50,
        "l1.accesses": 1000,
        "l1.hits": 600,
        "l2.accesses": 400,
        "l2.hits": 100,
        "gpu.kernels_completed": 1,
    }
    base.update(counters)
    return RunReport(workload="W", policy=policy, cycles=cycles, counters=base, clock_ghz=1.6)


class TestRunReport:
    def test_seconds_from_clock(self):
        report = _report("Uncached", cycles=1_600_000)
        assert report.seconds == pytest.approx(0.001)

    def test_derived_metrics(self):
        report = _report("CacheR", cycles=1000)
        assert report.dram_row_hit_rate == pytest.approx(0.8)
        assert report.cache_stall_cycles == 150
        assert report.cache_stalls_per_request == pytest.approx(0.15)
        assert report.l1_hit_rate == pytest.approx(0.6)
        assert report.l2_hit_rate == pytest.approx(0.25)

    def test_bandwidth_metrics_scale_with_time(self):
        fast = _report("CacheR", cycles=1000)
        slow = _report("CacheR", cycles=2000)
        assert fast.gvops > slow.gvops
        assert fast.gmrs > slow.gmrs

    def test_lane_ops_multiplied_by_wavefront_size(self):
        report = _report("CacheR", cycles=1000)
        assert report.lane_ops == 2000 * 64

    def test_zero_division_guards(self):
        empty = RunReport(workload="W", policy="P", cycles=10, counters={})
        assert empty.dram_row_hit_rate == 0.0
        assert empty.cache_stalls_per_request == 0.0
        assert empty.l1_hit_rate == 0.0

    def test_as_dict_round_trip(self):
        data = _report("CacheRW", cycles=123).as_dict()
        assert data["workload"] == "W"
        assert data["policy"] == "CacheRW"
        assert data["cycles"] == 123

    def test_from_stats_uses_config_clock(self):
        stats = StatsCollector()
        stats.add("gpu.mem_requests", 10)
        report = RunReport.from_stats("W", "Uncached", 100, stats, default_config())
        assert report.clock_ghz == default_config().gpu.clock_ghz
        assert report.gpu_mem_requests == 10


class TestComparison:
    def test_normalize_to(self):
        assert normalize_to({"a": 2.0, "b": 4.0}, "a") == {"a": 1.0, "b": 2.0}

    def test_normalize_missing_baseline(self):
        with pytest.raises(KeyError):
            normalize_to({"a": 1.0}, "b")

    def test_normalize_zero_baseline(self):
        with pytest.raises(ValueError):
            normalize_to({"a": 0.0, "b": 1.0}, "a")

    def test_static_best_and_worst(self):
        times = {"Uncached": 5.0, "CacheR": 3.0, "CacheRW": 9.0}
        assert static_best(times) == "CacheR"
        assert static_worst(times) == "CacheRW"

    def _comparison(self) -> PolicyComparison:
        comparison = PolicyComparison(workload="W")
        comparison.add(_report("Uncached", cycles=1000, **{"dram.accesses": 1000}))
        comparison.add(_report("CacheR", cycles=800, **{"dram.accesses": 600}))
        comparison.add(_report("CacheRW", cycles=1100, **{"dram.accesses": 500}))
        return comparison

    def test_normalized_exec_time(self):
        normalized = self._comparison().normalized_exec_time("Uncached")
        assert normalized["Uncached"] == pytest.approx(1.0)
        assert normalized["CacheR"] == pytest.approx(0.8)
        assert normalized["CacheRW"] == pytest.approx(1.1)

    def test_normalized_dram(self):
        normalized = self._comparison().normalized_dram_accesses("Uncached")
        assert normalized["CacheRW"] == pytest.approx(0.5)

    def test_best_and_worst_selection(self):
        comparison = self._comparison()
        assert comparison.static_best() == "CacheR"
        assert comparison.static_worst() == "CacheRW"
        assert comparison.static_best(["Uncached", "CacheRW"]) == "Uncached"

    def test_add_rejects_other_workload(self):
        comparison = PolicyComparison(workload="W")
        other = RunReport(workload="X", policy="Uncached", cycles=1, counters={})
        with pytest.raises(ValueError):
            comparison.add(other)

    def test_row_hit_rates_and_stalls(self):
        comparison = self._comparison()
        assert set(comparison.row_hit_rates()) == {"Uncached", "CacheR", "CacheRW"}
        assert all(v >= 0 for v in comparison.stalls_per_request().values())
