"""Tests for the DRAM address mapping and the DRAM timing model."""

from __future__ import annotations

import pytest

from repro.config import DramConfig
from repro.engine import Simulator
from repro.memory.address_mapping import AddressMapping
from repro.memory.dram import DramSystem
from repro.memory.request import AccessType, MemoryRequest
from repro.stats import StatsCollector


def _dram_config() -> DramConfig:
    return DramConfig(channels=2, banks_per_channel=4, row_bytes=1024, queue_depth=4)


class TestAddressMapping:
    def test_consecutive_lines_interleave_channels(self):
        mapping = AddressMapping(_dram_config(), line_bytes=64)
        assert mapping.locate(0).channel == 0
        assert mapping.locate(64).channel == 1
        assert mapping.locate(128).channel == 0

    def test_lines_fill_row_before_changing_bank(self):
        cfg = _dram_config()
        mapping = AddressMapping(cfg, line_bytes=64)
        lines_per_row = cfg.row_bytes // 64
        first = mapping.locate(0)
        same_row = mapping.locate(64 * cfg.channels * (lines_per_row - 1))
        next_bank = mapping.locate(64 * cfg.channels * lines_per_row)
        assert first.bank == same_row.bank and first.row == same_row.row
        assert next_bank.bank != first.bank or next_bank.row != first.row

    def test_row_id_unique_per_row_and_bank(self):
        cfg = _dram_config()
        mapping = AddressMapping(cfg, line_bytes=64)
        seen = {}
        for line in range(0, 512):
            address = line * 64
            loc = mapping.locate(address)
            key = (loc.channel, loc.bank, loc.row)
            row_id = mapping.row_id(address)
            if key in seen:
                assert seen[key] == row_id
            else:
                assert row_id not in seen.values()
                seen[key] = row_id

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            AddressMapping(_dram_config()).locate(-1)

    def test_row_bytes_must_be_line_multiple(self):
        with pytest.raises(ValueError):
            AddressMapping(DramConfig(row_bytes=100), line_bytes=64)

    def test_global_bank_is_unique(self):
        cfg = _dram_config()
        mapping = AddressMapping(cfg, line_bytes=64)
        lines_per_row = cfg.row_bytes // 64
        ids = set()
        # visit (channel, bank) combinations explicitly: channel bits are the
        # low line bits, banks change once a whole row of every channel is spanned
        for bank in range(cfg.banks_per_channel):
            for channel in range(cfg.channels):
                line_index = channel + cfg.channels * lines_per_row * bank
                loc = mapping.locate(line_index * 64)
                assert loc.channel == channel
                assert loc.bank == bank
                ids.add(loc.global_bank(cfg.banks_per_channel))
        assert len(ids) == cfg.channels * cfg.banks_per_channel


def _load(address: int) -> MemoryRequest:
    return MemoryRequest(access=AccessType.LOAD, address=address)


def _store(address: int) -> MemoryRequest:
    return MemoryRequest(access=AccessType.STORE, address=address)


class TestDramTiming:
    def _system(self) -> tuple[Simulator, StatsCollector, DramSystem]:
        sim = Simulator()
        stats = StatsCollector()
        return sim, stats, DramSystem(_dram_config(), sim, stats)

    def test_first_access_is_row_miss(self):
        sim, stats, dram = self._system()
        done = []
        dram.access(_load(0), lambda r: done.append(sim.now))
        sim.run()
        assert stats.get("dram.row_misses") == 1
        assert done and done[0] >= _dram_config().row_miss_cycles

    def test_same_row_access_is_row_hit(self):
        sim, stats, dram = self._system()
        dram.access(_load(0), lambda r: None)
        # same channel/bank/row: next line in the same row is channels*64 away
        dram.access(_load(64 * _dram_config().channels), lambda r: None)
        sim.run()
        assert stats.get("dram.row_hits") == 1

    def test_different_row_same_bank_is_conflict(self):
        sim, stats, dram = self._system()
        cfg = _dram_config()
        lines_per_row = cfg.row_bytes // 64
        stride_to_next_row_same_bank = 64 * cfg.channels * lines_per_row * cfg.banks_per_channel
        dram.access(_load(0), lambda r: None)
        dram.access(_load(stride_to_next_row_same_bank), lambda r: None)
        sim.run()
        assert stats.get("dram.row_conflicts") == 1

    def test_row_hits_are_faster_than_conflicts(self):
        cfg = _dram_config()
        sim, stats, dram = self._system()
        finish = {}
        dram.access(_load(0), lambda r: finish.setdefault("first", sim.now))
        dram.access(
            _load(64 * cfg.channels), lambda r: finish.setdefault("hit", sim.now)
        )
        sim.run()
        hit_service = finish["hit"] - finish["first"]
        assert hit_service <= cfg.row_hit_cycles + 2 * cfg.burst_cycles

    def test_reads_and_writes_counted_separately(self):
        sim, stats, dram = self._system()
        dram.access(_load(0), lambda r: None)
        dram.access(_store(64), lambda r: None)
        sim.run()
        assert stats.get("dram.reads") == 1
        assert stats.get("dram.writes") == 1
        assert stats.get("dram.accesses") == 2

    def test_sequential_stream_has_high_row_hit_rate(self):
        sim, stats, dram = self._system()
        for line in range(128):
            dram.access(_load(line * 64), lambda r: None)
        sim.run()
        assert dram.row_hit_rate() > 0.85

    def test_random_stream_has_low_row_hit_rate(self):
        sim, stats, dram = self._system()
        address = 12345
        for _ in range(128):
            address = (address * 1103515245 + 12345) % (1 << 24)
            dram.access(_load((address // 64) * 64), lambda r: None)
        sim.run()
        assert dram.row_hit_rate() < 0.5

    def test_on_accepted_fires_before_completion(self):
        sim, stats, dram = self._system()
        events = []
        dram.access(
            _store(0),
            on_done=lambda r: events.append("done"),
            on_accepted=lambda: events.append("accepted"),
        )
        sim.run()
        assert events == ["accepted", "done"]

    def test_queue_full_defers_acceptance(self):
        cfg = _dram_config()
        sim, stats, dram = self._system()
        accepted = []
        # flood one bank (channel 0, bank 0) far beyond its queue depth
        lines_per_row = cfg.row_bytes // 64
        same_bank_stride = 64 * cfg.channels * lines_per_row * cfg.banks_per_channel
        for i in range(cfg.queue_depth * 3):
            dram.access(
                _store(i * same_bank_stride),
                on_done=lambda r: None,
                on_accepted=lambda i=i: accepted.append(i),
            )
        assert len(accepted) <= cfg.queue_depth + 1
        sim.run()
        assert len(accepted) == cfg.queue_depth * 3
        assert stats.get("dram.queue_full_stalls") > 0

    def test_pending_drains_to_zero(self):
        sim, stats, dram = self._system()
        for line in range(32):
            dram.access(_load(line * 64), lambda r: None)
        assert dram.pending() > 0
        sim.run()
        assert dram.pending() == 0
