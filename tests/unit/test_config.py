"""Tests for the system configuration (paper Table 1)."""

from __future__ import annotations

import pytest

from repro.config import (
    CacheConfig,
    DramConfig,
    GpuConfig,
    SystemConfig,
    default_config,
    paper_config,
    scaled_config,
)


class TestGpuConfig:
    def test_paper_defaults_match_table1(self):
        gpu = GpuConfig()
        assert gpu.clock_ghz == pytest.approx(1.6)
        assert gpu.num_cus == 64
        assert gpu.simd_per_cu == 4
        assert gpu.max_waves_per_simd == 10
        assert gpu.wavefront_size == 64

    def test_max_waves_per_cu(self):
        gpu = GpuConfig(simd_per_cu=4, max_waves_per_simd=10)
        assert gpu.max_waves_per_cu == 40

    def test_cycle_time(self):
        gpu = GpuConfig(clock_ghz=2.0)
        assert gpu.cycle_time_ns == pytest.approx(0.5)


class TestCacheConfig:
    def test_paper_l1_geometry(self):
        l1 = CacheConfig(size_bytes=16 * 1024, line_bytes=64, assoc=16)
        assert l1.num_lines == 256
        assert l1.num_sets == 16

    def test_set_index_wraps_over_sets(self):
        cfg = CacheConfig(size_bytes=16 * 1024, line_bytes=64, assoc=16)
        assert cfg.set_index(0) == 0
        assert cfg.set_index(64) == 1
        assert cfg.set_index(64 * cfg.num_sets) == 0

    def test_line_address_alignment(self):
        cfg = CacheConfig(size_bytes=1024)
        assert cfg.line_address(0) == 0
        assert cfg.line_address(63) == 0
        assert cfg.line_address(64) == 64
        assert cfg.line_address(130) == 128

    def test_single_set_cache(self):
        cfg = CacheConfig(size_bytes=1024, line_bytes=64, assoc=16)
        assert cfg.num_sets == 1
        assert cfg.set_index(12345) == 0


class TestDramConfig:
    def test_total_banks(self):
        dram = DramConfig(channels=4, banks_per_channel=8)
        assert dram.total_banks == 32

    def test_latency_ordering(self):
        dram = DramConfig()
        assert dram.row_hit_cycles < dram.row_miss_cycles < dram.row_conflict_cycles


class TestSystemConfig:
    def test_default_is_scaled_8_cu(self):
        cfg = default_config()
        assert cfg.gpu.num_cus == 8
        assert cfg.l2.size_bytes == 512 * 1024

    def test_paper_config_matches_table1(self):
        cfg = paper_config()
        assert cfg.gpu.num_cus == 64
        assert cfg.l1.size_bytes == 16 * 1024
        assert cfg.l2.size_bytes == 4 * 1024 * 1024
        assert cfg.dram.channels == 16

    def test_describe_contains_table1_rows(self):
        rows = paper_config().describe()
        assert rows["# of CUs"] == "64"
        assert "16 KB" in rows["GPU L1 D-cache per CU"]
        assert "MHz" in rows["GPU Clock"]

    def test_scaled_config_preserves_per_cu_l1(self):
        small = scaled_config(4)
        assert small.l1.size_bytes == paper_config().l1.size_bytes

    def test_scaled_config_scales_l2_and_channels(self):
        small = scaled_config(8)
        assert small.l2.size_bytes == 512 * 1024
        assert small.dram.channels == 2
        assert small.gpu.num_cus == 8

    def test_scaled_config_keeps_l2_mshrs(self):
        # the MSHR pool is deliberately not scaled down (see config.py)
        assert scaled_config(8).l2.mshrs == paper_config().l2.mshrs

    def test_scaled_config_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            scaled_config(0)

    def test_configs_are_frozen(self):
        cfg = default_config()
        with pytest.raises(Exception):
            cfg.gpu.num_cus = 3  # type: ignore[misc]
