"""Tests for the workload registry and the generated workload traces."""

from __future__ import annotations

import pytest

from repro.core.advisor import WorkloadProfile
from repro.core.classification import PAPER_CATEGORIES
from repro.workloads.base import Workload
from repro.workloads.registry import (
    WORKLOAD_NAMES,
    get_workload,
    standard_suite,
    workload_metadata_table,
)

#: small scale keeps trace generation fast in unit tests
TEST_SCALE = 0.2


class TestRegistry:
    def test_eighteen_workloads_registered(self):
        # the paper's seventeen plus the beyond-paper MHA layer
        assert len(WORKLOAD_NAMES) == 18

    def test_registry_matches_paper_category_table(self):
        assert set(WORKLOAD_NAMES) == set(PAPER_CATEGORIES)

    def test_lookup_is_case_insensitive(self):
        assert get_workload("fwact").name == "FwAct"
        assert get_workload("FWLSTM").name == "FwLSTM"

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            get_workload("FwTransformer")

    def test_standard_suite_builds_all(self):
        suite = standard_suite(scale=TEST_SCALE)
        assert len(suite) == 18
        assert all(isinstance(w, Workload) for w in suite)

    def test_standard_suite_subset(self):
        suite = standard_suite(scale=TEST_SCALE, names=("FwAct", "SGEMM"))
        assert [w.name for w in suite] == ["FwAct", "SGEMM"]

    def test_gru_and_lstm_have_distinct_names(self):
        assert get_workload("FwGRU").name == "FwGRU"
        assert get_workload("FwBwLSTM").name == "FwBwLSTM"

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            get_workload("FwAct", scale=0)


class TestWorkloadMetadata:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_metadata_is_complete(self, name):
        workload = get_workload(name, scale=TEST_SCALE)
        meta = workload.metadata
        assert meta.name == name
        assert meta.suite
        assert meta.paper_input
        assert meta.unique_kernels >= 1
        assert meta.total_kernels >= meta.unique_kernels
        assert meta.paper_footprint
        assert meta.paper_category is PAPER_CATEGORIES[name]

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_profile_is_valid(self, name):
        profile = get_workload(name, scale=TEST_SCALE).profile()
        assert isinstance(profile, WorkloadProfile)
        assert profile.arithmetic_intensity > 0

    def test_metadata_table_has_one_row_per_workload(self):
        rows = workload_metadata_table(scale=TEST_SCALE)
        assert len(rows) == 18
        names = [row["name"] for row in rows]
        assert names == list(WORKLOAD_NAMES)
        for row in rows:
            assert row["sim_line_requests"] > 0
            assert row["sim_footprint_bytes"] > 0


class TestGeneratedTraces:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_trace_is_well_formed(self, name):
        workload = get_workload(name, scale=TEST_SCALE)
        trace = workload.build_trace()
        assert trace.name == name
        assert trace.num_kernels >= 1
        assert trace.line_requests > 0
        for kernel in trace.kernels:
            assert kernel.num_wavefronts >= 1
            for wave in kernel.wavefronts:
                assert len(wave.instructions) >= 1
                for instr in wave.memory_instructions:
                    for address in instr.line_addresses:
                        assert address % 64 == 0

    def test_multi_kernel_workloads_have_many_kernels(self):
        assert get_workload("FwLSTM", scale=TEST_SCALE).build_trace().num_kernels > 2
        assert get_workload("CM", scale=TEST_SCALE).build_trace().num_kernels > 2

    def test_single_kernel_workloads_have_one_kernel(self):
        for name in ("FwAct", "SGEMM", "FwFc", "FwSoft"):
            assert get_workload(name, scale=TEST_SCALE).build_trace().num_kernels == 1

    def test_scale_changes_trace_size(self):
        small = get_workload("FwAct", scale=0.1).build_trace().line_requests
        large = get_workload("FwAct", scale=0.4).build_trace().line_requests
        assert large > small

    def test_streaming_workloads_have_no_line_reuse(self):
        trace = get_workload("FwAct", scale=TEST_SCALE).build_trace()
        assert len(trace.kernels[0].touched_lines()) == trace.line_requests

    def test_softmax_rereads_its_lines(self):
        trace = get_workload("FwSoft", scale=TEST_SCALE).build_trace()
        kernel = trace.kernels[0]
        assert kernel.line_requests > len(kernel.touched_lines())

    def test_elementwise_loads_equal_stores(self):
        kernel = get_workload("FwAct", scale=TEST_SCALE).build_trace().kernels[0]
        assert kernel.load_lines == kernel.store_lines

    def test_backward_pool_is_store_dominated(self):
        kernel = get_workload("BwPool", scale=TEST_SCALE).build_trace().kernels[0]
        assert kernel.store_lines > kernel.load_lines

    def test_dgemm_uses_double_precision_footprint(self):
        sgemm = get_workload("SGEMM", scale=TEST_SCALE).build_trace()
        dgemm = get_workload("DGEMM", scale=TEST_SCALE).build_trace()
        # DGEMM moves 8-byte elements, so per-element footprint is larger
        assert dgemm.footprint_bytes() > 0 and sgemm.footprint_bytes() > 0

    def test_rnn_training_has_more_kernels_than_inference(self):
        fw = get_workload("FwLSTM", scale=0.5).build_trace().num_kernels
        fwbw = get_workload("FwBwLSTM", scale=0.5).build_trace().num_kernels
        assert fwbw > fw
