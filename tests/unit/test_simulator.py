"""Tests for the simulator driver, in particular its aggregate event budget."""

from __future__ import annotations

import pytest

from repro.engine import Simulator


def _self_rescheduling(sim: Simulator):
    def tick() -> None:
        sim.schedule(1, tick)

    return tick


class TestSimulatorBudget:
    def test_budget_exhaustion_raises(self):
        sim = Simulator(max_events=10)
        sim.schedule(1, _self_rescheduling(sim))
        with pytest.raises(RuntimeError, match="event budget"):
            sim.run()
        assert sim.queue.executed == 10

    def test_budget_is_aggregate_across_runs(self):
        # a livelocked model must not get a fresh budget per run() call
        sim = Simulator(max_events=10)
        sim.schedule(1, _self_rescheduling(sim))
        sim.run(until=6)  # executes 6 events, stops on the time bound
        assert sim.queue.executed == 6
        with pytest.raises(RuntimeError, match="event budget"):
            sim.run()
        # only the remaining 4 events of the shared budget were executed
        assert sim.queue.executed == 10

    def test_exhausted_budget_raises_immediately_when_work_pending(self):
        sim = Simulator(max_events=3)
        sim.schedule(1, _self_rescheduling(sim))
        with pytest.raises(RuntimeError):
            sim.run()
        with pytest.raises(RuntimeError):
            sim.run()
        assert sim.queue.executed == 3

    def test_draining_within_budget_does_not_raise(self):
        sim = Simulator(max_events=5)
        fired = []
        for delay in (1, 2, 3):
            sim.schedule(delay, lambda d=delay: fired.append(d))
        assert sim.run() == 3
        assert fired == [1, 2, 3]

    def test_finish_hooks_fire_with_final_time(self):
        sim = Simulator()
        seen = []
        sim.on_finish(seen.append)
        sim.schedule(7, lambda: None)
        sim.run()
        assert seen == [7]
