"""Tests for the layer trace builders and the ProgramBuilder utilities."""

from __future__ import annotations

import pytest

from repro.memory.request import AccessType
from repro.workloads.layers.common import PcAllocator, ProgramBuilder, chunks
from repro.workloads.layers.elementwise import elementwise_kernel
from repro.workloads.layers.gemm import fully_connected_forward_kernel, gemm_kernel
from repro.workloads.layers.normalization import (
    batchnorm_backward_kernel,
    batchnorm_forward_kernel,
    lrn_forward_kernel,
)
from repro.workloads.layers.pooling import pool_backward_kernel, pool_forward_kernel
from repro.workloads.layers.rnn_cell import (
    rnn_backward_kernel,
    rnn_gate_kernel,
    rnn_pointwise_kernel,
)
from repro.workloads.layers.softmax import softmax_forward_kernel
from repro.workloads.tensor import AddressSpace


class TestChunksAndPcs:
    def test_chunks_cover_range_exactly(self):
        pieces = list(chunks(130, 64))
        assert pieces == [(0, 64), (64, 64), (128, 2)]
        assert sum(count for _start, count in pieces) == 130

    def test_chunks_reject_bad_size(self):
        with pytest.raises(ValueError):
            list(chunks(10, 0))

    def test_pc_allocator_is_stable_per_site(self):
        pcs = PcAllocator(base=0x100)
        first = pcs.pc("load_x")
        second = pcs.pc("store_y")
        assert pcs.pc("load_x") == first
        assert second == first + 8
        assert set(pcs.sites()) == {"load_x", "store_y"}


class TestProgramBuilder:
    def test_load_coalesces_contiguous_elements(self):
        space = AddressSpace()
        x = space.allocate("x", 1024)
        builder = ProgramBuilder(PcAllocator())
        builder.load("load_x", x, 0, 64)
        program = builder.build()
        assert len(program.memory_instructions) == 1
        assert len(program.memory_instructions[0].line_addresses) == 4

    def test_counts_larger_than_wavefront_split(self):
        space = AddressSpace()
        x = space.allocate("x", 4096)
        builder = ProgramBuilder(PcAllocator())
        builder.load("load_x", x, 0, 200)
        program = builder.build()
        assert len(program.memory_instructions) == 4  # ceil(200/64)
        pcs = {instr.pc for instr in program.memory_instructions}
        assert len(pcs) == 1  # same static site

    def test_store_and_compute_emission(self):
        space = AddressSpace()
        y = space.allocate("y", 256)
        builder = ProgramBuilder(PcAllocator())
        builder.compute(7).store("store_y", y, 0, 64)
        program = builder.build()
        assert program.vector_ops == 7
        assert program.memory_instructions[0].is_store

    def test_gather_handles_divergent_indices(self):
        space = AddressSpace()
        x = space.allocate("x", 1 << 16)
        builder = ProgramBuilder(PcAllocator())
        builder.gather("gather_x", x, [i * 1024 for i in range(32)])
        instr = builder.build().memory_instructions[0]
        assert len(instr.line_addresses) == 32

    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            ProgramBuilder(PcAllocator()).build()

    def test_zero_count_rejected(self):
        space = AddressSpace()
        x = space.allocate("x", 64)
        with pytest.raises(ValueError):
            ProgramBuilder(PcAllocator()).load("l", x, 0, 0)


class TestElementwiseKernel:
    def test_streaming_reads_and_writes_every_element_once(self):
        space = AddressSpace()
        x = space.allocate("x", 4096)
        y = space.allocate("y", 4096)
        kernel = elementwise_kernel("relu", [x], [y], 4096, elements_per_wavefront=512)
        assert kernel.num_wavefronts == 8
        assert kernel.load_lines == 4096 // 16
        assert kernel.store_lines == 4096 // 16
        # no element is touched twice
        assert len(kernel.touched_lines()) == kernel.line_requests

    def test_multiple_inputs_increase_read_ratio(self):
        space = AddressSpace()
        x = space.allocate("x", 1024)
        dy = space.allocate("dy", 1024)
        dx = space.allocate("dx", 1024)
        kernel = elementwise_kernel("relu_bwd", [x, dy], [dx], 1024, 512)
        assert kernel.load_lines == 2 * kernel.store_lines


class TestNormalizationKernels:
    def test_batchnorm_forward_reads_input_twice(self):
        space = AddressSpace()
        x = space.allocate("x", 2048)
        y = space.allocate("y", 2048)
        params = space.allocate("params", 64)
        kernel = batchnorm_forward_kernel("bn", x, y, params, 2048, 512, channels=16)
        # two passes over x plus the parameter loads
        assert kernel.load_lines > 2 * (2048 // 16)
        assert kernel.store_lines == 2048 // 16

    def test_batchnorm_backward_has_partial_sum_stores(self):
        space = AddressSpace()
        x = space.allocate("x", 2048)
        dy = space.allocate("dy", 2048)
        dx = space.allocate("dx", 2048)
        params = space.allocate("params", 64)
        partials = space.allocate("partials", 64)
        kernel = batchnorm_backward_kernel("bnb", x, dy, dx, params, partials, 2048, 512, 16)
        partial_lines = {
            addr
            for wave in kernel.wavefronts
            for instr in wave.memory_instructions
            if instr.is_store
            for addr in instr.line_addresses
            if partials.base_address <= addr < partials.end_address
        }
        partial_stores = sum(
            1
            for wave in kernel.wavefronts
            for instr in wave.memory_instructions
            if instr.is_store and instr.line_addresses[0] in partial_lines
        )
        # many stores target the same small set of partial-sum lines
        assert partial_stores > len(partial_lines)

    def test_lrn_is_pure_streaming(self):
        space = AddressSpace()
        x = space.allocate("x", 2048)
        scale = space.allocate("scale", 2048)
        y = space.allocate("y", 2048)
        kernel = lrn_forward_kernel("lrn", x, scale, y, 2048, 512)
        assert len(kernel.touched_lines()) == kernel.line_requests


class TestPoolingKernels:
    def test_forward_pool_has_vertical_window_reuse(self):
        space = AddressSpace()
        x = space.allocate("x", 64 * 64)
        y = space.allocate("y", 31 * 31)
        kernel = pool_forward_kernel("pool", x, y, 64, 64, rows_per_wavefront=4)
        # overlapping window rows mean some input lines are loaded twice
        assert kernel.load_lines > len(
            {a for w in kernel.wavefronts for i in w.memory_instructions if i.is_load for a in i.line_addresses}
        )

    def test_backward_pool_is_store_heavy_with_overlap(self):
        space = AddressSpace()
        out = 31 * 31
        dy = space.allocate("dy", out)
        mask = space.allocate("mask", out)
        dx = space.allocate("dx", 64 * 64)
        kernel = pool_backward_kernel("poolb", dy, mask, dx, 64, 64, rows_per_wavefront=4)
        assert kernel.store_lines > kernel.load_lines
        distinct_store_lines = {
            a for w in kernel.wavefronts for i in w.memory_instructions if i.is_store for a in i.line_addresses
        }
        assert kernel.store_lines > len(distinct_store_lines)

    def test_window_must_fit_plane(self):
        space = AddressSpace()
        x = space.allocate("x", 16)
        y = space.allocate("y", 16)
        with pytest.raises(ValueError):
            pool_forward_kernel("bad", x, y, in_width=2, in_height=2)


class TestSoftmaxKernel:
    def test_three_read_passes_one_write_pass(self):
        space = AddressSpace()
        x = space.allocate("x", 2048)
        y = space.allocate("y", 2048)
        kernel = softmax_forward_kernel("softmax", x, y, 2048, 1024)
        assert kernel.load_lines == 3 * (2048 // 16)
        assert kernel.store_lines == 2048 // 16


class TestGemmKernels:
    def test_gemm_covers_all_tiles(self):
        space = AddressSpace()
        m, n, k = 128, 128, 64
        a = space.allocate("A", m * k)
        b = space.allocate("Bt", n * k)
        c = space.allocate("C", m * n)
        kernel = gemm_kernel("gemm", a, b, c, m, n, k, tile_m=64, tile_n=64, waves_per_workgroup=2)
        assert kernel.num_wavefronts == 4 * 2  # 2x2 tiles, 2 waves each
        assert kernel.store_lines == m * n // 16

    def test_gemm_shares_b_tiles_across_workgroup_rows(self):
        space = AddressSpace()
        m, n, k = 256, 64, 64
        a = space.allocate("A", m * k)
        b = space.allocate("Bt", n * k)
        c = space.allocate("C", m * n)
        kernel = gemm_kernel("gemm", a, b, c, m, n, k)
        b_lines = {
            addr
            for w in kernel.wavefronts
            for i in w.memory_instructions
            if i.is_load
            for addr in i.line_addresses
            if b.base_address <= addr < b.end_address
        }
        b_loads = sum(
            sum(1 for addr in i.line_addresses if b.base_address <= addr < b.end_address)
            for w in kernel.wavefronts
            for i in w.memory_instructions
            if i.is_load
        )
        assert b_loads > len(b_lines)  # the B tile is re-read by later tile rows

    def test_gemm_validates_tensor_sizes(self):
        space = AddressSpace()
        a = space.allocate("A", 16)
        b = space.allocate("Bt", 16)
        c = space.allocate("C", 16)
        with pytest.raises(ValueError):
            gemm_kernel("bad", a, b, c, m=64, n=64, k=64)

    def test_fully_connected_rereads_weights_per_batch_tile(self):
        space = AddressSpace()
        batch, in_f, out_f = 128, 64, 64
        x = space.allocate("x", batch * in_f)
        w = space.allocate("w", out_f * in_f)
        y = space.allocate("y", batch * out_f)
        kernel = fully_connected_forward_kernel("fc", x, w, y, batch, in_f, out_f, batch_tile=64)
        weight_loads = sum(
            sum(1 for addr in i.line_addresses if w.base_address <= addr < w.end_address)
            for wave in kernel.wavefronts
            for i in wave.memory_instructions
            if i.is_load
        )
        assert weight_loads >= 2 * (out_f * in_f * 4 // 64)  # read once per batch tile


class TestRnnKernels:
    def test_gate_kernel_streams_weights_and_shares_state(self):
        space = AddressSpace()
        hidden, gates = 32, 4
        weights = space.allocate("w", gates * hidden * 2 * hidden)
        state = space.allocate("state", 2 * hidden)
        gate_out = space.allocate("gates", gates * hidden)
        kernel = rnn_gate_kernel("gemv", weights, state, gate_out, hidden, gates)
        assert kernel.num_wavefronts == (gates * hidden + 63) // 64
        state_lines = {
            addr
            for w in kernel.wavefronts
            for i in w.memory_instructions
            for addr in i.line_addresses
            if state.base_address <= addr < state.end_address
        }
        assert state_lines  # every wavefront reads the shared state

    def test_pointwise_kernel_rereads_gates(self):
        space = AddressSpace()
        hidden, gates = 64, 4
        gate_t = space.allocate("gates", gates * hidden)
        cell = space.allocate("cell", hidden)
        hidden_t = space.allocate("hidden", hidden)
        kernel = rnn_pointwise_kernel("pw", gate_t, cell, hidden_t, hidden, gates, gate_passes=3)
        distinct = {
            a for w in kernel.wavefronts for i in w.memory_instructions if i.is_load for a in i.line_addresses
        }
        assert kernel.load_lines > len(distinct)

    def test_backward_kernel_accumulates_weight_gradients(self):
        space = AddressSpace()
        hidden, gates = 32, 4
        weights = space.allocate("w", gates * hidden * 2 * hidden)
        saved = space.allocate("saved", gates * hidden)
        grad_state = space.allocate("gs", 2 * hidden)
        grad_w = space.allocate("gw", 256)
        kernel = rnn_backward_kernel("bwd", weights, saved, grad_state, grad_w, hidden, gates)
        assert kernel.store_lines > 0
        assert kernel.load_lines > kernel.store_lines
