"""Focused tests for cross-policy comparison and collector merging.

Complements ``test_stats.py``: exercises the failure modes of the
normalization helpers, candidate filtering, and the histogram side of
:meth:`StatsCollector.merge` that telemetry's percentile summaries rely on.
"""

from __future__ import annotations

import pytest

from repro.config import default_config
from repro.stats import RunReport, StatsCollector
from repro.stats.comparison import (
    PolicyComparison,
    normalize_to,
    static_best,
    static_worst,
)


def _report(policy: str, cycles: int, **counters: int) -> RunReport:
    stats = StatsCollector()
    for name, value in counters.items():
        stats.add(name.replace("_", "."), value)
    return RunReport.from_stats("W", policy, cycles, stats, default_config())


class TestNormalizeTo:
    def test_missing_baseline_names_it(self):
        with pytest.raises(KeyError, match="Uncached"):
            normalize_to({"CacheR": 1.0}, "Uncached")

    def test_zero_baseline_is_value_error(self):
        with pytest.raises(ValueError, match="zero"):
            normalize_to({"Uncached": 0.0, "CacheR": 2.0}, "Uncached")

    def test_preserves_every_key(self):
        values = {"a": 3.0, "b": 6.0, "c": 1.5}
        normalized = normalize_to(values, "a")
        assert set(normalized) == set(values)
        assert normalized["c"] == pytest.approx(0.5)


class TestStaticSelection:
    def test_empty_inputs_raise(self):
        with pytest.raises(ValueError):
            static_best({})
        with pytest.raises(ValueError):
            static_worst({})

    def test_single_candidate_is_both(self):
        assert static_best({"only": 4.0}) == "only"
        assert static_worst({"only": 4.0}) == "only"

    def test_candidate_filter_drops_unknown_names(self):
        comparison = PolicyComparison(workload="W")
        comparison.add(_report("Uncached", cycles=100))
        comparison.add(_report("CacheR", cycles=80))
        # an unknown candidate is skipped rather than KeyError'd
        assert comparison.static_best(["CacheR", "NoSuchPolicy"]) == "CacheR"

    def test_candidate_filter_with_no_survivors_raises(self):
        comparison = PolicyComparison(workload="W")
        comparison.add(_report("Uncached", cycles=100))
        with pytest.raises(ValueError):
            comparison.static_best(["NoSuchPolicy"])


class TestComparisonOverMergedStats:
    def test_workload_mismatch_rejected(self):
        comparison = PolicyComparison(workload="W")
        with pytest.raises(ValueError, match="expected 'W'"):
            comparison.add(
                RunReport(workload="other", policy="Uncached", cycles=1, counters={})
            )

    def test_merge_adds_shared_histogram_buckets(self):
        a = StatsCollector()
        b = StatsCollector()
        for value in (10, 10, 30):
            a.observe("gpu.mem_latency", value)
        for value in (10, 20):
            b.observe("gpu.mem_latency", value)
        a.merge(b)
        assert a.histogram("gpu.mem_latency") == {10: 3, 20: 1, 30: 1}
        # percentiles see the merged population
        assert a.histogram_percentile("gpu.mem_latency", 50) == 10.0
        assert a.histogram_percentile("gpu.mem_latency", 100) == 30.0

    def test_merge_keeps_disjoint_histograms(self):
        a = StatsCollector()
        b = StatsCollector()
        a.observe("l1.lat", 1)
        b.observe("l2.lat", 2)
        a.merge(b)
        assert a.histogram("l1.lat") == {1: 1}
        assert a.histogram("l2.lat") == {2: 1}

    def test_merged_collectors_feed_comparison(self):
        # two shards of one run merge, then compare against a second policy
        shard1, shard2 = StatsCollector(), StatsCollector()
        shard1.add("dram.accesses", 300)
        shard2.add("dram.accesses", 100)
        shard1.merge(shard2)
        merged = RunReport.from_stats("W", "CacheR", 80, shard1, default_config())

        comparison = PolicyComparison(workload="W")
        comparison.add(_report("Uncached", cycles=100, dram_accesses=800))
        comparison.add(merged)
        normalized = comparison.normalized_dram_accesses("Uncached")
        assert normalized["CacheR"] == pytest.approx(0.5)
        assert comparison.static_best() == "CacheR"
