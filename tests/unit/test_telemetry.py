"""Tests for the telemetry subsystem: trace recorder, trace validation,
windowed metrics sampler, and host-side profiler."""

from __future__ import annotations

import functools

import pytest

from repro.engine import Simulator
from repro.stats import StatsCollector
from repro.telemetry import (
    MetricsSampler,
    SimProfiler,
    TelemetryConfig,
    TraceRecorder,
    component_of,
    derive_window,
    trace_errors,
    validate_trace,
    windows_total,
)
from repro.telemetry.trace import (
    PID_CONTROL,
    PID_STREAMS,
    TID_FAULTS,
    WAVE_LANE_STRIDE,
)


class FakeSim:
    """Just enough simulator for the recorder: a settable clock."""

    def __init__(self) -> None:
        self.now = 0


class TestTelemetryConfig:
    def test_disabled_by_default(self):
        config = TelemetryConfig()
        assert not config.enabled

    @pytest.mark.parametrize(
        "kwargs",
        [{"trace": True}, {"metrics_interval": 100}, {"profile": True}],
    )
    def test_any_observer_enables(self, kwargs):
        assert TelemetryConfig(**kwargs).enabled

    def test_rejects_negative_interval(self):
        with pytest.raises(ValueError):
            TelemetryConfig(metrics_interval=-1)

    def test_rejects_nonpositive_event_cap(self):
        with pytest.raises(ValueError):
            TelemetryConfig(max_trace_events=0)


class TestTraceRecorder:
    def test_kernel_span(self):
        sim = FakeSim()
        recorder = TraceRecorder(sim)
        recorder.kernel_started(0, 3, "gemm")
        sim.now = 500
        recorder.kernel_finished(0)
        (span,) = recorder.spans("kernel")
        assert span["name"] == "gemm"
        assert span["ts"] == 0 and span["dur"] == 500
        assert span["pid"] == PID_STREAMS and span["tid"] == 0
        assert span["args"]["kernel_index"] == 3

    def test_interrupted_kernel_is_flagged(self):
        sim = FakeSim()
        recorder = TraceRecorder(sim)
        recorder.kernel_started(1, 0, "k")
        sim.now = 10
        recorder.kernel_interrupted(1)
        (span,) = recorder.spans("kernel")
        assert span["args"]["interrupted"] is True

    def test_finish_closes_open_spans(self):
        sim = FakeSim()
        recorder = TraceRecorder(sim)
        recorder.kernel_started(0, 0, "k")
        recorder.wavefront_started(7, cu_id=2, stream_id=0, kernel_id=0)
        sim.now = 99
        recorder.finish(99)
        kernels = recorder.spans("kernel")
        waves = recorder.spans("wavefront")
        assert len(kernels) == 1 and kernels[0]["args"]["interrupted"] is True
        assert len(waves) == 1 and waves[0]["args"]["open_at_finish"] is True
        assert not trace_errors(recorder.to_dict())

    def test_concurrent_wavefronts_get_separate_lanes(self):
        # wavefronts overlap in time on one CU; each must land on its own
        # lane row or the X-spans could not nest
        sim = FakeSim()
        recorder = TraceRecorder(sim)
        recorder.wavefront_started(1, cu_id=0, stream_id=0, kernel_id=0)
        sim.now = 10
        recorder.wavefront_started(2, cu_id=0, stream_id=0, kernel_id=0)
        sim.now = 50
        recorder.wavefront_finished(1)
        sim.now = 80
        recorder.wavefront_finished(2)
        spans = recorder.spans("wavefront")
        tids = {span["tid"] for span in spans}
        assert len(tids) == 2
        assert not trace_errors(recorder.to_dict())

    def test_lane_is_reused_after_release(self):
        sim = FakeSim()
        recorder = TraceRecorder(sim)
        recorder.wavefront_started(1, cu_id=3, stream_id=0, kernel_id=0)
        sim.now = 5
        recorder.wavefront_finished(1)
        recorder.wavefront_started(2, cu_id=3, stream_id=0, kernel_id=0)
        sim.now = 9
        recorder.wavefront_finished(2)
        spans = recorder.spans("wavefront")
        assert [span["tid"] for span in spans] == [3 * WAVE_LANE_STRIDE] * 2

    def test_degraded_interval_union(self):
        sim = FakeSim()
        recorder = TraceRecorder(sim)
        sim.now = 100
        recorder.degraded_begin()
        sim.now = 150
        recorder.degraded_begin()  # nested activation: no new interval
        sim.now = 400
        recorder.degraded_end()
        (span,) = recorder.spans("fault")
        assert span["ts"] == 100 and span["dur"] == 300
        assert span["pid"] == PID_CONTROL and span["tid"] == TID_FAULTS
        assert recorder.degraded_span_cycles() == 300

    def test_degraded_end_without_begin_is_noop(self):
        recorder = TraceRecorder(FakeSim())
        recorder.degraded_end()
        assert recorder.events == []

    def test_truncation_cap(self):
        sim = FakeSim()
        recorder = TraceRecorder(sim, max_events=2)
        for index in range(5):
            recorder.kernel_boundary(index)
        assert len(recorder.events) == 2
        assert recorder.truncated
        assert recorder.to_dict()["otherData"]["truncated"] is True

    def test_to_dict_carries_process_metadata(self):
        sim = FakeSim()
        recorder = TraceRecorder(sim)
        recorder.set_topology(num_devices=2, cus_per_device=4)
        recorder.wavefront_started(1, cu_id=5, stream_id=0, kernel_id=0)
        recorder.wavefront_finished(1)
        blob = recorder.to_dict()
        names = {
            event["args"]["name"]
            for event in blob["traceEvents"]
            if event["ph"] == "M" and event["name"] == "process_name"
        }
        assert {"streams", "device0", "device1"} <= names
        # cu 5 belongs to device 1 with 4 CUs per device
        (span,) = recorder.spans("wavefront")
        assert span["pid"] == 10 + 1
        assert not trace_errors(blob)


class TestTraceValidation:
    def test_rejects_non_object(self):
        assert trace_errors([1, 2]) != []
        assert trace_errors({"noTraceEvents": 1}) != []

    def _event(self, **overrides):
        event = {"name": "e", "cat": "c", "ph": "X", "ts": 0, "dur": 5,
                 "pid": 1, "tid": 1}
        event.update(overrides)
        return event

    def test_valid_nested_spans(self):
        blob = {"traceEvents": [
            self._event(ts=0, dur=100),
            self._event(name="inner", ts=10, dur=20),
            self._event(name="after", ts=200, dur=5),
        ]}
        assert trace_errors(blob) == []
        validate_trace(blob)  # must not raise

    def test_negative_duration(self):
        blob = {"traceEvents": [self._event(dur=-1)]}
        errors = trace_errors(blob)
        assert any("negative" in error for error in errors)
        with pytest.raises(ValueError):
            validate_trace(blob)

    def test_overlap_without_nesting(self):
        blob = {"traceEvents": [
            self._event(ts=0, dur=100),
            self._event(name="straddler", ts=50, dur=100),
        ]}
        errors = trace_errors(blob)
        assert any("overlap" in error for error in errors)

    def test_overlap_on_different_rows_is_fine(self):
        blob = {"traceEvents": [
            self._event(ts=0, dur=100, tid=1),
            self._event(ts=50, dur=100, tid=2),
        ]}
        assert trace_errors(blob) == []

    def test_missing_keys_and_unknown_phase(self):
        assert any(
            "missing" in error
            for error in trace_errors({"traceEvents": [{"ph": "X", "ts": 0, "dur": 1}]})
        )
        assert any(
            "unknown phase" in error
            for error in trace_errors({"traceEvents": [self._event(ph="Z")]})
        )
        assert any(
            "ts" in error
            for error in trace_errors({"traceEvents": [self._event(ts="soon")]})
        )

    def test_metadata_events_need_no_timestamp(self):
        blob = {"traceEvents": [
            {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
             "args": {"name": "streams"}},
        ]}
        assert trace_errors(blob) == []


class TestMetricsSampler:
    def test_rejects_nonpositive_interval(self, sim, stats):
        with pytest.raises(ValueError):
            MetricsSampler(sim, stats, 0)

    def test_windows_sum_to_final_counters(self, sim, stats):
        sampler = MetricsSampler(sim, stats, interval_cycles=100)
        stats.add("setup.work", 7)  # pre-start counters land in window 0
        active = [True]

        def work(amount):
            stats.add("run.work", amount)

        for tick in range(1, 6):
            sim.schedule(tick * 60, functools.partial(work, tick))
        sim.schedule(360, lambda: active.__setitem__(0, False))
        sampler.start(lambda: active[0])
        sim.on_finish(sampler.finalize)
        sim.run()

        assert len(sampler.windows) >= 2
        assert windows_total(sampler.windows) == stats.counters()
        # windows tile the run: contiguous, ordered, no gaps
        edges = [(w["start"], w["end"]) for w in sampler.windows]
        assert edges[0][0] == 0
        for (_, prev_end), (start, _) in zip(edges, edges[1:]):
            assert start == prev_end

    def test_finalize_forces_one_window(self, sim, stats):
        sampler = MetricsSampler(sim, stats, interval_cycles=1000)
        sampler.finalize(0)
        assert len(sampler.windows) == 1
        assert sampler.windows[0]["counters"] == {}

    def test_double_start_rejected(self, sim, stats):
        sampler = MetricsSampler(sim, stats, interval_cycles=10)
        sampler.start(lambda: False)
        with pytest.raises(RuntimeError):
            sampler.start(lambda: False)

    def test_derive_window_signals(self):
        window = {
            "start": 0,
            "end": 100,
            "counters": {
                "l1.accesses": 10, "l1.hits": 5,
                "l2.accesses": 8, "l2.hits": 2,
                "topo.remote_requests": 3, "topo.local_requests": 9,
                "l2.blocked_mshr_full": 4, "l2.mshr_coalesced": 6,
                "gpu.mem_requests": 10,
                "stream0.mem_requests": 7, "stream1.mem_requests": 3,
            },
        }
        derived = derive_window(window)
        assert derived["l1_hit_rate"] == pytest.approx(0.5)
        assert derived["l2_hit_rate"] == pytest.approx(0.25)
        assert derived["remote_fraction"] == pytest.approx(0.25)
        assert derived["mshr_blocked"] == 4
        assert derived["stream_traffic"] == {0: 7, 1: 3}

    def test_derive_window_empty_ratios(self):
        derived = derive_window({"start": 0, "end": 1, "counters": {}})
        assert derived["l1_hit_rate"] == 0.0
        assert derived["remote_fraction"] == 0.0
        with pytest.raises(ValueError):
            derive_window({"start": 0, "end": 1})

    def test_derive_window_zero_access_window(self):
        # a quiet window (e.g. a stalled tenant): traffic counters moved but
        # no cache access did -- every ratio must come out 0.0, not NaN/raise
        window = {
            "start": 500,
            "end": 1000,
            "counters": {
                "l1.accesses": 0,
                "l1.hits": 0,
                "l2.accesses": 0,
                "dram.accesses": 12,
                "gpu.mem_requests": 0,
            },
        }
        derived = derive_window(window)
        assert derived["l1_hit_rate"] == 0.0
        assert derived["l2_hit_rate"] == 0.0
        assert derived["remote_fraction"] == 0.0
        assert derived["mem_requests"] == 0
        assert derived["stream_traffic"] == {}

    def test_derive_window_counters_absent_from_deltas(self):
        # the sampler records only counters that *moved* in the window, so a
        # window may carry hits without accesses (or neither); absent names
        # must read as zero rather than KeyError
        derived = derive_window(
            {"start": 0, "end": 10, "counters": {"l1.hits": 3, "dram.reads": 4}}
        )
        assert derived["l1_hit_rate"] == 0.0  # denominator absent -> 0, not 3/0
        assert derived["l2_hit_rate"] == 0.0
        assert derived["mshr_blocked"] == 0
        assert derived["mshr_coalesced"] == 0
        assert derived["mem_requests"] == 0

    def test_single_window_run_totals_and_derivation(self, sim, stats):
        # an interval longer than the whole run yields exactly one finalize
        # window whose deltas ARE the end-of-run counters
        sampler = MetricsSampler(sim, stats, interval_cycles=10_000)
        sampler.start(lambda: False)
        stats.add("l1.accesses", 8)
        stats.add("l1.hits", 2)
        sim.run()
        sampler.finalize(sim.now)
        assert len(sampler.windows) == 1
        window = sampler.windows[0]
        assert windows_total([window]) == {"l1.accesses": 8, "l1.hits": 2}
        derived = derive_window(window)
        assert derived["l1_hit_rate"] == pytest.approx(0.25)
        assert derived["start"] == 0 and derived["end"] == window["end"]


class TestProfiler:
    def test_component_of_bound_method(self):
        stats = StatsCollector()
        assert component_of(stats.snapshot) == "StatsCollector"

    def test_component_of_partial_unwraps(self):
        stats = StatsCollector()
        assert component_of(functools.partial(stats.add, "x", 1)) == "StatsCollector"

    def test_component_of_closure_uses_qualname(self):
        def outer():
            def inner():
                pass

            return inner

        name = component_of(outer())
        assert name == "TestProfiler" or name.startswith("test_component")

    def test_profiled_run_matches_plain_run(self, stats):
        def drive(sim: Simulator) -> None:
            def work(amount):
                stats.add("w", amount)
                if amount < 5:
                    sim.schedule(10, functools.partial(work, amount + 1))

            sim.schedule(0, functools.partial(work, 1))

        plain = Simulator()
        drive(plain)
        plain_final = plain.run()
        plain_executed = plain.queue.executed

        profiled = Simulator()
        profiler = SimProfiler()
        profiled.profiler = profiler
        drive(profiled)
        assert profiled.run() == plain_final
        assert profiled.queue.executed == plain_executed
        assert profiler.events == plain_executed
        assert profiler.wall_seconds > 0

    def test_summary_shares(self):
        profiler = SimProfiler()
        profiler.record(StatsCollector().snapshot, 0.75)
        profiler.record(str.strip.__get__("x"), 0.25)
        profiler.add_wall(2.0)
        summary = profiler.summary()
        assert summary["events"] == 2
        assert summary["events_per_second"] == pytest.approx(1.0)
        assert summary["components"][0]["component"] == "StatsCollector"
        assert summary["components"][0]["share"] == pytest.approx(0.75)

    def test_empty_profiler_summary(self):
        summary = SimProfiler().summary()
        assert summary["events"] == 0
        assert summary["events_per_second"] == 0.0
        assert summary["components"] == []
