"""Unit tests for the online adaptive policy subsystem."""

from __future__ import annotations

import pytest

from repro.adaptive import (
    AdaptiveConfig,
    DynamicPolicyController,
    DynamicPolicyEngine,
    PhaseDetector,
    SetDuelingMonitor,
)
from repro.adaptive.set_dueling import COST_FETCH, COST_STORE_ALLOCATE
from repro.config import CacheConfig
from repro.core.policies import (
    CACHE_R,
    CACHE_RW,
    CACHE_RW_AB,
    CACHE_RW_PCBY,
    STATIC_POLICIES,
    UNCACHED,
)
from repro.engine import Simulator
from repro.memory.request import AccessType, MemoryRequest
from repro.stats import StatsCollector

#: a 64 KB / 16-way L2 (64 sets) keeps leader math small
L2 = CacheConfig(size_bytes=64 * 1024, writeback=True)


def load(address: int) -> MemoryRequest:
    return MemoryRequest(access=AccessType.LOAD, address=address)


def store(address: int) -> MemoryRequest:
    return MemoryRequest(access=AccessType.STORE, address=address)


class TestAdaptiveConfig:
    def test_defaults_are_valid_and_duel_the_static_three(self):
        config = AdaptiveConfig()
        assert tuple(p.name for p in config.candidates) == (
            "Uncached",
            "CacheR",
            "CacheRW",
        )
        assert not config.pinned
        # the default start is CacheR, the read-caching hardware default
        assert config.initial_policy is CACHE_R

    def test_single_candidate_is_pinned_and_starts_there(self):
        config = AdaptiveConfig(candidates=(CACHE_RW,))
        assert config.pinned
        assert config.initial_policy is CACHE_RW

    def test_rejects_empty_candidates(self):
        with pytest.raises(ValueError):
            AdaptiveConfig(candidates=())

    def test_rejects_duplicate_candidate_names(self):
        with pytest.raises(ValueError):
            AdaptiveConfig(candidates=(CACHE_RW, CACHE_RW))

    def test_rejects_mixed_optimization_flags(self):
        with pytest.raises(ValueError, match="optimization flags"):
            AdaptiveConfig(candidates=(CACHE_RW, CACHE_RW_PCBY))

    def test_allows_uniform_optimization_flags(self):
        config = AdaptiveConfig(candidates=(CACHE_RW_AB,))
        assert config.initial_policy.allocation_bypass

    def test_rejects_out_of_range_initial_index(self):
        with pytest.raises(ValueError):
            AdaptiveConfig(initial_index=3)

    @pytest.mark.parametrize(
        "field, value",
        [
            ("leader_sets_per_policy", 0),
            ("min_leader_accesses", 0),
            ("decay_period", 0),
            ("commit_decisions", -1),
            ("hysteresis", -0.1),
            ("stall_halfline_cycles", 0),
            ("epoch_cycles", 0),
            ("phase_min_requests", 0),
            ("phase_hit_rate_delta", 0.0),
        ],
    )
    def test_rejects_bad_knobs(self, field, value):
        with pytest.raises(ValueError):
            AdaptiveConfig(**{field: value})

    def test_fingerprint_is_stable_and_knob_sensitive(self):
        assert AdaptiveConfig().fingerprint() == AdaptiveConfig().fingerprint()
        assert (
            AdaptiveConfig().fingerprint()
            != AdaptiveConfig(epoch_cycles=999).fingerprint()
        )
        assert (
            AdaptiveConfig().fingerprint()
            != AdaptiveConfig(candidates=(UNCACHED, CACHE_R)).fingerprint()
        )


class TestSetDuelingMonitor:
    def make(self, leaders=2, num_sets=64) -> SetDuelingMonitor:
        return SetDuelingMonitor(
            STATIC_POLICIES,
            num_sets=num_sets,
            stats=StatsCollector(),
            leader_sets_per_policy=leaders,
        )

    def test_every_candidate_gets_the_requested_leaders(self):
        monitor = self.make(leaders=2)
        owners = [monitor.leader_index(s) for s in range(64)]
        for index in range(len(STATIC_POLICIES)):
            assert owners.count(index) == 2

    def test_leader_constituencies_are_adjacent_and_rotated(self):
        monitor = self.make(leaders=3)
        # constituency 0 starts at set 0 with identity order ...
        assert [monitor.leader_index(s) for s in (0, 1, 2)] == [0, 1, 2]
        # ... and later constituencies rotate which candidate is first
        stride = 64 // 3
        assert monitor.leader_index(stride) == 1

    def test_followers_have_no_leader(self):
        monitor = self.make(leaders=1)
        followers = [s for s in range(64) if monitor.leader_index(s) is None]
        assert len(followers) == 64 - 3

    def test_leader_allocation_clamps_on_tiny_caches(self):
        monitor = SetDuelingMonitor(
            STATIC_POLICIES,
            num_sets=16,
            stats=StatsCollector(),
            leader_sets_per_policy=16,
        )
        assert monitor.leader_sets_per_policy == 2  # 16 // (2 * 3)

    def test_too_few_sets_to_duel_raises(self):
        with pytest.raises(ValueError):
            SetDuelingMonitor(STATIC_POLICIES, num_sets=4, stats=StatsCollector())

    def test_costs_and_demand_accumulate_per_candidate(self):
        monitor = self.make(leaders=1)
        monitor.record_demand(0)
        monitor.record_demand(0)
        monitor.record_miss(0, is_store=False)  # set 0 belongs to candidate 0
        monitor.record_miss(0, is_store=True)
        monitor.record_bypass(0, is_store=False)
        monitor.record_stall(0, cycles=50)
        score = monitor.scores()[0]
        assert score.accesses == 2
        assert score.traffic == 2 * COST_FETCH + COST_STORE_ALLOCATE
        assert score.stall_halflines == 2  # 50 cycles at 25 cycles/half-line
        assert score.cost_per_access == pytest.approx((5 + 2) / 2)

    def test_follower_costs_are_ignored(self):
        monitor = self.make(leaders=1)
        follower = next(s for s in range(64) if monitor.leader_index(s) is None)
        monitor.record_miss(follower, is_store=False)
        monitor.record_bypass(follower, is_store=True)
        assert all(score.traffic == 0 for score in monitor.scores())

    def test_disabled_monitor_records_nothing(self):
        monitor = self.make(leaders=1)
        monitor.enabled = False
        monitor.record_miss(0, is_store=False)
        monitor.record_stall(0, cycles=100)
        assert all(score.traffic == 0 for score in monitor.scores())

    def test_decay_halves_and_reset_clears(self):
        monitor = self.make(leaders=1)
        monitor.record_demand(1)
        monitor.record_demand(1)
        monitor.record_miss(1, is_store=False)
        monitor.decay()
        score = monitor.scores()[1]
        assert score.accesses == 1 and score.traffic == 1
        monitor.reset()
        assert monitor.scores()[1].accesses == 0


class TestPhaseDetector:
    def make(self, sim, stats, **kwargs) -> PhaseDetector:
        defaults = dict(epoch_cycles=100, min_requests=10)
        defaults.update(kwargs)
        return PhaseDetector(sim, stats, **defaults)

    def test_detects_a_hit_rate_phase_change(self):
        sim, stats = Simulator(), StatsCollector()
        detector = self.make(sim, stats, hit_rate_delta=0.2)
        changes: list = []
        detector.add_listener(changes.append)

        requests = stats.counter("gpu.mem_requests")
        hits = stats.counter("l2.hits")
        accesses = stats.counter("l2.accesses")
        stats.counter("gpu.vector_ops").add(100)

        detector.start(lambda: sim.now < 350)
        # window 1: 100% hit rate establishes the reference phase
        requests.add(100)
        hits.add(100)
        accesses.add(100)
        sim.run(until=150)
        assert detector.current_phase is not None
        # window 2: hit rate collapses -> phase change event on the queue
        requests.add(100)
        accesses.add(100)
        sim.run()
        assert len(changes) == 1
        assert stats.get("adaptive.phase_changes") == 1
        assert changes[0].hit_rate == pytest.approx(0.0)

    def test_thin_windows_merge_instead_of_firing(self):
        sim, stats = Simulator(), StatsCollector()
        detector = self.make(sim, stats, min_requests=1000)
        detector.add_listener(lambda sample: pytest.fail("no change expected"))
        stats.counter("gpu.mem_requests").add(5)
        detector.start(lambda: sim.now < 250)
        sim.run()
        assert stats.get("adaptive.phase_samples") == 0

    def test_stable_metrics_never_fire(self):
        sim, stats = Simulator(), StatsCollector()
        detector = self.make(sim, stats)
        changes: list = []
        detector.add_listener(changes.append)
        requests = stats.counter("gpu.mem_requests")
        ops = stats.counter("gpu.vector_ops")

        def feed() -> None:
            requests.add(50)
            ops.add(100)
            if sim.now < 500:
                sim.schedule(100, feed)

        feed()
        detector.start(lambda: sim.now < 500)
        sim.run()
        assert not changes
        assert stats.get("adaptive.phase_samples") > 1

    def test_double_start_raises(self):
        sim, stats = Simulator(), StatsCollector()
        detector = self.make(sim, stats)
        detector.start(lambda: False)
        with pytest.raises(RuntimeError):
            detector.start(lambda: False)


def make_engine(adaptive: AdaptiveConfig, stats=None) -> DynamicPolicyEngine:
    return DynamicPolicyEngine(adaptive, l2_config=L2, stats=stats or StatsCollector())


class TestDynamicPolicyEngine:
    def test_leader_sets_override_the_active_policy(self):
        config = AdaptiveConfig(initial_index=0, leader_sets_per_policy=1)
        engine = make_engine(config)
        assert engine.active_policy is UNCACHED
        # set 1 is CacheR's leader in constituency 0 (identity order)
        leader_request = engine.annotate(load(1 * 64))
        assert not leader_request.bypass_l2 and not leader_request.bypass_l1
        # a follower load obeys the active policy (Uncached -> bypass all)
        follower_set = next(
            s for s in range(L2.num_sets) if engine.monitor.leader_index(s) is None
        )
        follower_request = engine.annotate(load(follower_set * 64))
        assert follower_request.bypass_l2 and follower_request.bypass_l1

    def test_stores_always_bypass_l1(self):
        engine = make_engine(AdaptiveConfig())
        request = engine.annotate(store(0))
        assert request.bypass_l1

    def test_swap_changes_only_the_followers(self):
        config = AdaptiveConfig(initial_index=0, leader_sets_per_policy=1)
        engine = make_engine(config)
        follower_set = next(
            s for s in range(L2.num_sets) if engine.monitor.leader_index(s) is None
        )
        engine.set_active(1)  # CacheR
        assert engine.active_policy is CACHE_R
        assert not engine.annotate(load(follower_set * 64)).bypass_l2
        # the Uncached leader set still bypasses
        uncached_leader = next(
            s for s in range(L2.num_sets) if engine.monitor.leader_index(s) == 0
        )
        assert engine.annotate(load(uncached_leader * 64)).bypass_l2

    def test_annotation_records_leader_demand(self):
        stats = StatsCollector()
        engine = make_engine(AdaptiveConfig(leader_sets_per_policy=1), stats)
        engine.annotate(load(0))
        assert stats.get("adaptive.duel.Uncached.leader_accesses") == 1

    def test_committed_engine_annotates_like_the_static_engine(self):
        engine = make_engine(AdaptiveConfig(initial_index=2))  # CacheRW
        engine.set_exploring(False)
        for set_index in range(L2.num_sets):
            request = engine.annotate(store(set_index * 64))
            assert request.bypass_l1 and not request.bypass_l2

    def test_describe_reports_adaptive_state(self):
        engine = make_engine(AdaptiveConfig())
        summary = engine.describe()
        assert summary["adaptive"] is True
        assert summary["active_policy"] == "CacheR"


class TestDynamicPolicyController:
    def make(self, config: AdaptiveConfig):
        sim, stats = Simulator(), StatsCollector()
        engine = make_engine(config, stats)
        detector = PhaseDetector(sim, stats, epoch_cycles=config.epoch_cycles)
        controller = DynamicPolicyController(engine, detector, sim, stats)
        return controller, engine, stats

    def feed(self, monitor, candidate: int, accesses: int, cost: int) -> None:
        set_index = next(
            s for s in range(L2.num_sets) if monitor.leader_index(s) == candidate
        )
        for _ in range(accesses):
            monitor.record_demand(candidate)
        for _ in range(cost // 2):
            monitor.record_miss(set_index, is_store=False)

    def test_switches_to_a_clearly_better_challenger(self):
        config = AdaptiveConfig(
            initial_index=0, min_leader_accesses=10, commit_decisions=0
        )
        controller, engine, stats = self.make(config)
        self.feed(controller.monitor, 0, accesses=20, cost=40)  # 2.0 per access
        self.feed(controller.monitor, 1, accesses=20, cost=10)  # 0.5 per access
        self.feed(controller.monitor, 2, accesses=20, cost=40)
        controller._decide()
        assert engine.active_policy is CACHE_R
        assert stats.get("adaptive.switches") == 1
        assert controller.history[-1][1] == "CacheR"

    def test_keeps_incumbent_without_enough_evidence(self):
        config = AdaptiveConfig(initial_index=0, min_leader_accesses=100)
        controller, engine, _ = self.make(config)
        self.feed(controller.monitor, 0, accesses=20, cost=40)
        self.feed(controller.monitor, 1, accesses=20, cost=2)
        self.feed(controller.monitor, 2, accesses=20, cost=40)
        controller._decide()
        assert engine.active_policy is UNCACHED

    def test_hysteresis_blocks_marginal_challengers(self):
        config = AdaptiveConfig(
            initial_index=0, min_leader_accesses=10, hysteresis=0.5, commit_decisions=0
        )
        controller, engine, _ = self.make(config)
        self.feed(controller.monitor, 0, accesses=20, cost=40)
        self.feed(controller.monitor, 1, accesses=20, cost=30)  # only 25% better
        self.feed(controller.monitor, 2, accesses=20, cost=40)
        controller._decide()
        assert engine.active_policy is UNCACHED

    def test_stable_duel_commits_and_kernel_boundary_reopens(self):
        config = AdaptiveConfig(
            initial_index=1, min_leader_accesses=5, commit_decisions=2
        )
        controller, engine, stats = self.make(config)
        for _ in range(2):
            self.feed(controller.monitor, 0, accesses=10, cost=40)
            self.feed(controller.monitor, 1, accesses=10, cost=2)
            self.feed(controller.monitor, 2, accesses=10, cost=40)
            controller._decide()
        assert not engine.exploring, "two stable decisions must commit"
        assert not controller.monitor.enabled
        assert stats.get("adaptive.commits") == 1
        controller.on_kernel_boundary()
        assert engine.exploring, "a kernel boundary reopens exploration"
        assert stats.get("adaptive.explorations") == 1
        assert controller.monitor.scores()[1].accesses == 0, "stale evidence cleared"

    def test_phase_change_reopens_a_committed_duel_even_without_mid_kernel(self):
        """Default config: a phase change must not leave a stale commit."""
        config = AdaptiveConfig(
            initial_index=1, min_leader_accesses=5, commit_decisions=1,
            mid_kernel_switching=False,
        )
        controller, engine, stats = self.make(config)
        self.feed(controller.monitor, 0, accesses=10, cost=40)
        self.feed(controller.monitor, 1, accesses=10, cost=2)
        self.feed(controller.monitor, 2, accesses=10, cost=40)
        controller._decide()
        assert not engine.exploring
        controller._on_phase_change(None)
        assert engine.exploring, "a phase change must re-open exploration"
        # but with mid_kernel_switching off an open duel is not re-decided
        decisions_before = stats.get("adaptive.decisions")
        controller._on_phase_change(None)
        assert stats.get("adaptive.decisions") == decisions_before

    def test_pinned_controller_never_duels(self):
        config = AdaptiveConfig(candidates=(CACHE_RW,))
        controller, engine, stats = self.make(config)
        assert not engine.exploring
        controller.on_kernel_boundary()
        controller._decide()
        assert stats.get("adaptive.decisions") == 0
        assert stats.get("adaptive.switches") == 0
        assert stats.get("adaptive.kernels_under.CacheRW") == 1

    def test_kernel_accounting_follows_the_active_policy(self):
        config = AdaptiveConfig(initial_index=0, switch_at_kernel_boundaries=False)
        controller, engine, stats = self.make(config)
        controller.on_kernel_boundary()
        engine.set_active(2)
        controller.on_kernel_boundary()
        assert stats.get("adaptive.kernels_under.Uncached") == 1
        assert stats.get("adaptive.kernels_under.CacheRW") == 1
