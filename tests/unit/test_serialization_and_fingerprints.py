"""RunReport round-trip and config/job fingerprint stability."""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.config import default_config, paper_config, scaled_config
from repro.core.policies import ALL_POLICIES, CACHE_R, CACHE_RW, UNCACHED
from repro.core.reuse_predictor import PredictorConfig
from repro.experiments.jobs import JobSpec
from repro.fingerprint import canonical_payload, code_digest, fingerprint
from repro.stats.report import RunReport


def make_report(**overrides) -> RunReport:
    fields = dict(
        workload="FwSoft",
        policy="CacheR",
        cycles=123456,
        counters={"dram.accesses": 42, "l1.hits": 7, "gpu.mem_requests": 99},
        clock_ghz=1.6,
        wavefront_size=64,
    )
    fields.update(overrides)
    return RunReport(**fields)


class TestRunReportRoundTrip:
    def test_to_from_dict_is_lossless(self):
        report = make_report()
        assert RunReport.from_dict(report.to_dict()) == report

    def test_round_trip_survives_json(self):
        report = make_report()
        revived = RunReport.from_dict(json.loads(json.dumps(report.to_dict())))
        assert revived == report
        # derived metrics are reproduced exactly, not approximately
        assert revived.as_dict() == report.as_dict()

    def test_round_trip_preserves_non_default_fields(self):
        report = make_report(clock_ghz=2.0, wavefront_size=32)
        revived = RunReport.from_dict(report.to_dict())
        assert revived.clock_ghz == 2.0
        assert revived.wavefront_size == 32

    def test_missing_required_key_raises(self):
        data = make_report().to_dict()
        del data["cycles"]
        with pytest.raises(ValueError, match="cycles"):
            RunReport.from_dict(data)

    def test_bad_counters_raise(self):
        data = make_report().to_dict()
        data["counters"] = ["not", "a", "mapping"]
        with pytest.raises(ValueError):
            RunReport.from_dict(data)

    def test_to_dict_copies_counters(self):
        report = make_report()
        report.to_dict()["counters"]["dram.accesses"] = -1  # type: ignore[index]
        assert report.counters["dram.accesses"] == 42


class TestConfigFingerprints:
    def test_same_inputs_same_fingerprint(self):
        assert default_config().fingerprint() == default_config().fingerprint()
        assert CACHE_RW.fingerprint() == replace(CACHE_RW).fingerprint()
        assert PredictorConfig().fingerprint() == PredictorConfig().fingerprint()

    def test_changed_config_changes_fingerprint(self):
        base = default_config()
        assert base.fingerprint() != paper_config().fingerprint()
        assert base.fingerprint() != scaled_config(4).fingerprint()
        bumped = replace(base, l2=replace(base.l2, mshrs=base.l2.mshrs + 1))
        assert bumped.fingerprint() != base.fingerprint()

    def test_policies_have_distinct_fingerprints(self):
        prints = {policy.fingerprint() for policy in ALL_POLICIES}
        assert len(prints) == len(ALL_POLICIES)

    def test_renamed_policy_changes_fingerprint(self):
        assert (
            replace(CACHE_RW, name="CacheRW-renamed").fingerprint()
            != CACHE_RW.fingerprint()
        )

    def test_fingerprint_rejects_unserializable_objects(self):
        with pytest.raises(TypeError):
            fingerprint({"bad": object()})

    def test_canonical_payload_tags_dataclasses(self):
        payload = canonical_payload(UNCACHED)
        assert payload["__kind__"] == "PolicySpec"

    def test_canonical_payload_tags_nested_dataclasses(self):
        payload = canonical_payload(default_config())
        assert payload["__kind__"] == "SystemConfig"
        assert payload["gpu"]["__kind__"] == "GpuConfig"
        assert payload["l1"]["__kind__"] == "CacheConfig"

    def test_code_digest_is_stable_hex(self):
        assert code_digest() == code_digest()
        assert len(code_digest()) == 64
        int(code_digest(), 16)


class TestJobSpecFingerprints:
    def test_same_job_same_key(self):
        a = JobSpec(workload="FwSoft", policy=CACHE_R, scale=0.5, config=scaled_config(2))
        b = JobSpec(workload="FwSoft", policy=CACHE_R, scale=0.5, config=scaled_config(2))
        assert a.fingerprint() == b.fingerprint()

    @pytest.mark.parametrize(
        "change",
        [
            {"workload": "FwAct"},
            {"policy": CACHE_RW},
            {"scale": 0.25},
            {"config": scaled_config(4)},
            {"predictor_config": PredictorConfig(table_entries=256)},
            {"dbi_max_rows": 8},
        ],
        ids=lambda change: next(iter(change)),
    )
    def test_any_changed_input_changes_key(self, change):
        base = JobSpec(workload="FwSoft", policy=CACHE_R, scale=0.5, config=scaled_config(2))
        assert replace(base, **change).fingerprint() != base.fingerprint()

    def test_key_is_hex_sha256(self):
        key = JobSpec(workload="FwSoft", policy=CACHE_R).fingerprint()
        assert len(key) == 64
        int(key, 16)  # raises if not hex


class TestCodeStaleness:
    """A simulator-source edit must change every job fingerprint.

    This is what lets the persistent result store survive hot-path rewrites
    of the core (like PR 2's): stored reports keyed under the old code
    digest become misses instead of being served stale.
    """

    def test_editing_a_source_file_changes_tree_digest(self, tmp_path):
        from repro.fingerprint import tree_digest

        package = tmp_path / "fakepkg"
        package.mkdir()
        (package / "a.py").write_text("X = 1\n")
        (package / "sub").mkdir()
        (package / "sub" / "b.py").write_text("Y = 2\n")
        before = tree_digest(package)
        assert before == tree_digest(package)  # deterministic
        (package / "sub" / "b.py").write_text("Y = 3\n")
        assert tree_digest(package) != before

    def test_adding_a_source_file_changes_tree_digest(self, tmp_path):
        from repro.fingerprint import tree_digest

        package = tmp_path / "fakepkg"
        package.mkdir()
        (package / "a.py").write_text("X = 1\n")
        before = tree_digest(package)
        (package / "new_module.py").write_text("")
        assert tree_digest(package) != before

    def test_code_digest_change_invalidates_job_fingerprints(self, monkeypatch):
        import repro.fingerprint as fp

        job = JobSpec(workload="FwSoft", policy=CACHE_R, scale=0.5, config=scaled_config(2))
        before = job.fingerprint()
        monkeypatch.setattr(fp, "code_digest", lambda: "0" * 64)
        after = job.fingerprint()
        assert after != before
        monkeypatch.undo()
        assert job.fingerprint() == before

    def test_code_digest_reflects_current_package_source(self):
        from pathlib import Path

        from repro.fingerprint import tree_digest

        package_root = Path(fingerprint.__code__.co_filename).resolve().parent
        # the cached digest must equal a fresh walk of the live source tree
        assert code_digest() == tree_digest(package_root)
