"""Unit tests for the multi-device topology subsystem.

The property tests here are the acceptance checks of the address
interleaving layer: every cache-line address has exactly one home device,
the (device, local address) mapping is a bijection that round-trips
through the per-device :class:`~repro.memory.address_mapping
.AddressMapping`, and the one-device mapping is the identity of current
behaviour.
"""

from __future__ import annotations

import pytest

from repro.config import DramConfig
from repro.memory.address_mapping import AddressMapping, DeviceInterleave
from repro.topology import (
    TOPOLOGIES,
    TopologyConfig,
    device_wavefront_counts,
    partition_trace,
    shared_read_only_lines,
    topology_by_name,
)
from repro.workloads.registry import get_workload
from repro.workloads.trace import (
    AccessType,
    KernelTrace,
    MemInstr,
    WavefrontProgram,
    WorkloadTrace,
)

LINE = 64


def _addresses(limit_lines: int = 4096, stride: int = 7):
    """A spread of line-aligned and unaligned byte addresses."""
    for line in range(0, limit_lines, stride):
        yield line * LINE
        yield line * LINE + 17  # unaligned offsets stay within the line


class TestDeviceInterleave:
    @pytest.mark.parametrize("num_devices", [1, 2, 3, 4, 8])
    @pytest.mark.parametrize("chunk_lines", [1, 4, 32])
    def test_every_line_has_exactly_one_home(self, num_devices, chunk_lines):
        interleave = DeviceInterleave(num_devices, LINE, chunk_lines)
        for address in _addresses():
            device = interleave.device_of(address)
            assert 0 <= device < num_devices
            # the whole cache line shares the home of its first byte
            line_start = address - address % LINE
            assert interleave.device_of(line_start) == device
            assert interleave.device_of(line_start + LINE - 1) == device

    @pytest.mark.parametrize("num_devices", [1, 2, 3, 4, 8])
    @pytest.mark.parametrize("chunk_lines", [1, 4, 32])
    def test_partition_mapping_is_a_bijection(self, num_devices, chunk_lines):
        interleave = DeviceInterleave(num_devices, LINE, chunk_lines)
        seen: set[tuple[int, int]] = set()
        for address in _addresses():
            device = interleave.device_of(address)
            local = interleave.to_local(address)
            assert interleave.to_global(device, local) == address
            if address % LINE == 0:
                pair = (device, local)
                assert pair not in seen, "two lines collapsed onto one partition slot"
                seen.add(pair)

    def test_local_space_is_dense_per_device(self):
        """Each partition's chunks pack densely from local address zero."""
        interleave = DeviceInterleave(4, LINE, chunk_lines=2)
        chunk_bytes = 2 * LINE
        for device in range(4):
            locals_seen = sorted(
                {
                    interleave.to_local(interleave.to_global(device, slot * chunk_bytes))
                    for slot in range(16)
                }
            )
            assert locals_seen == [slot * chunk_bytes for slot in range(16)]

    @pytest.mark.parametrize("chunk_lines", [1, 32])
    def test_round_trips_with_dram_address_mapping(self, chunk_lines):
        """Local addresses land on valid per-device DRAM coordinates and back."""
        config = DramConfig(channels=4, banks_per_channel=4)
        mapping = AddressMapping(config, line_bytes=LINE)
        interleave = DeviceInterleave(2, LINE, chunk_lines)
        for address in range(0, 2048 * LINE, 13 * LINE):
            local = interleave.to_local(address)
            coordinates = mapping.locate(local)
            assert mapping.address_of(coordinates) == local - local % LINE
            device = interleave.device_of(address)
            assert interleave.to_global(device, mapping.address_of(coordinates)) == address

    def test_single_device_mapping_is_the_identity(self):
        interleave = DeviceInterleave(1, LINE, 32)
        for address in _addresses():
            assert interleave.device_of(address) == 0
            assert interleave.to_local(address) == address
            assert interleave.to_global(0, address) == address

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            DeviceInterleave(0)
        with pytest.raises(ValueError):
            DeviceInterleave(2, chunk_lines=0)
        interleave = DeviceInterleave(2)
        with pytest.raises(ValueError):
            interleave.device_of(-1)
        with pytest.raises(ValueError):
            interleave.to_global(2, 0)
        with pytest.raises(ValueError):
            interleave.to_global(0, -64)


class TestAddressMappingInverse:
    def test_address_of_inverts_locate(self):
        config = DramConfig(channels=4, banks_per_channel=8)
        mapping = AddressMapping(config, line_bytes=LINE)
        for line in range(0, 5000, 11):
            address = line * LINE
            assert mapping.address_of(mapping.locate(address)) == address

    def test_address_of_rejects_out_of_range_coordinates(self):
        config = DramConfig(channels=2, banks_per_channel=2)
        mapping = AddressMapping(config, line_bytes=LINE)
        good = mapping.locate(0)
        from dataclasses import replace

        with pytest.raises(ValueError):
            mapping.address_of(replace(good, channel=2))
        with pytest.raises(ValueError):
            mapping.address_of(replace(good, bank=2))
        with pytest.raises(ValueError):
            mapping.address_of(replace(good, column=mapping.lines_per_row))


class TestTopologyConfig:
    def test_registry_names_resolve_case_insensitively(self):
        for name in TOPOLOGIES:
            assert topology_by_name(name.upper()).name == name

    def test_unknown_topology_raises(self):
        with pytest.raises(KeyError):
            topology_by_name("hyper-torus")

    def test_fingerprint_ignores_the_display_name(self):
        """A registered topology and ad-hoc identical physics share cells."""
        named = topology_by_name("dual-chiplet")
        anonymous = TopologyConfig(
            num_devices=2, remote_latency_cycles=60, fabric_requests_per_cycle=1.0
        )
        assert named.fingerprint() == anonymous.fingerprint()
        assert named.with_devices(2).fingerprint() == named.fingerprint()

    def test_fingerprint_changes_with_any_knob(self):
        base = TopologyConfig(num_devices=2)
        assert base.fingerprint() == TopologyConfig(num_devices=2).fingerprint()
        for changed in (
            TopologyConfig(num_devices=4),
            TopologyConfig(num_devices=2, interleave_lines=8),
            TopologyConfig(num_devices=2, remote_latency_cycles=42),
            TopologyConfig(num_devices=2, fabric_requests_per_cycle=2.0),
            TopologyConfig(num_devices=2, replicate_weights=True),
        ):
            assert changed.fingerprint() != base.fingerprint()

    def test_validation(self):
        with pytest.raises(ValueError):
            TopologyConfig(num_devices=0)
        with pytest.raises(ValueError):
            TopologyConfig(interleave_lines=0)
        with pytest.raises(ValueError):
            TopologyConfig(remote_latency_cycles=-1)
        with pytest.raises(ValueError):
            TopologyConfig(fabric_requests_per_cycle=0.0)
        with pytest.raises(ValueError):
            TopologyConfig(partition="model_parallel")

    def test_with_devices_keeps_fabric_and_drops_name(self):
        quad = topology_by_name("quad-gpu").with_devices(2)
        assert quad.num_devices == 2
        assert quad.remote_latency_cycles == 200
        assert quad.name == ""
        assert quad.label == "2dev"


def _trace_with(programs_per_kernel: list[int]) -> WorkloadTrace:
    trace = WorkloadTrace(name="synthetic")
    pc = 0
    for count in programs_per_kernel:
        kernel = KernelTrace(name="k")
        for wavefront in range(count):
            program = WavefrontProgram(workgroup_id=wavefront)
            program.append(
                MemInstr(
                    access=AccessType.LOAD,
                    line_addresses=(wavefront * LINE,),
                    pc=pc,
                )
            )
            pc += 4
            kernel.add_wavefront(program)
        trace.add_kernel(kernel)
    return trace


class TestPartitioner:
    def test_single_device_partition_is_identity(self):
        trace = get_workload("FwSoft", scale=0.05).build_trace()
        assert partition_trace(trace, TopologyConfig(num_devices=1)) is trace

    def test_wavefronts_split_into_balanced_tagged_blocks(self):
        trace = _trace_with([10, 7])
        split = partition_trace(trace, TopologyConfig(num_devices=4))
        assert split.num_kernels == 2
        counts = device_wavefront_counts(split)
        assert counts == {0: 3 + 2, 1: 3 + 2, 2: 2 + 2, 3: 2 + 1}
        # per-kernel blocks are contiguous and in device order
        for kernel in split.kernels:
            devices = [program.device for program in kernel.wavefronts]
            assert devices == sorted(devices)

    def test_partition_preserves_instruction_totals(self):
        trace = get_workload("SGEMM", scale=0.1).build_trace()
        split = partition_trace(trace, TopologyConfig(num_devices=2))
        assert split.line_requests == trace.line_requests
        assert split.vector_ops == trace.vector_ops
        assert split.num_kernels == trace.num_kernels

    def test_shared_read_only_lines_excludes_stored_lines(self):
        trace = WorkloadTrace(name="s")
        kernel = KernelTrace(name="k")
        # two wavefronts (one per device) load line 0; the second also
        # stores line 64, and both load line 64 -> only line 0 is weightish
        w0 = WavefrontProgram()
        w0.append(MemInstr(AccessType.LOAD, (0, 64), pc=0))
        w1 = WavefrontProgram()
        w1.append(MemInstr(AccessType.LOAD, (0, 64), pc=4))
        w1.append(MemInstr(AccessType.STORE, (64,), pc=8))
        kernel.add_wavefront(w0)
        kernel.add_wavefront(w1)
        trace.add_kernel(kernel)
        assert shared_read_only_lines(trace, num_devices=2) == {0}

    def test_replicated_weights_localize_shared_lines(self):
        topology = TopologyConfig(num_devices=2, replicate_weights=True, interleave_lines=1)
        trace = WorkloadTrace(name="r")
        kernel = KernelTrace(name="k")
        for _ in range(2):
            program = WavefrontProgram()
            program.append(MemInstr(AccessType.LOAD, (0,), pc=0))
            kernel.add_wavefront(program)
        trace.add_kernel(kernel)
        split = partition_trace(trace, topology)
        interleave = DeviceInterleave(2, LINE, 1)
        for program in split.kernels[0].wavefronts:
            (instr,) = program.memory_instructions
            (address,) = instr.line_addresses
            assert address != 0, "shared read-only line was not replicated"
            assert interleave.device_of(address) == program.device

    def test_replicas_do_not_collide_with_trace_addresses(self):
        topology = TopologyConfig(num_devices=2, replicate_weights=True)
        trace = get_workload("DGEMM", scale=0.2).build_trace()
        original = {
            address
            for kernel in trace.kernels
            for program in kernel.wavefronts
            for instr in program.memory_instructions
            for address in instr.line_addresses
        }
        split = partition_trace(trace, topology)
        shared = shared_read_only_lines(trace, 2)
        replicas = {
            address
            for kernel in split.kernels
            for program in kernel.wavefronts
            for instr in program.memory_instructions
            for address in instr.line_addresses
        } - original
        if shared:  # DGEMM reuses its weight matrix across wavefronts
            assert replicas, "replication mode produced no replica addresses"
        assert not replicas & original
