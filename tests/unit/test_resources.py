"""Tests for the contention primitives (ThroughputResource, WaitQueue)."""

from __future__ import annotations

import pytest

from repro.engine.resources import ThroughputResource, WaitQueue


class TestThroughputResource:
    def test_back_to_back_grants_spaced_by_rate(self):
        port = ThroughputResource("port", cycles_per_grant=1.0)
        assert port.grant(10) == 10
        assert port.grant(10) == 11
        assert port.grant(10) == 12

    def test_idle_resource_grants_immediately(self):
        port = ThroughputResource("port", cycles_per_grant=1.0)
        port.grant(0)
        assert port.grant(100) == 100

    def test_fractional_rate_allows_multiple_grants_per_cycle(self):
        port = ThroughputResource("port", cycles_per_grant=0.25)
        grants = [port.grant(0) for _ in range(4)]
        assert grants == [0, 0, 0, 0]
        assert port.grant(0) == 1

    def test_wait_cycles_accumulate(self):
        port = ThroughputResource("port", cycles_per_grant=2.0)
        port.grant(0)
        port.grant(0)  # waits 2 cycles
        assert port.total_wait_cycles == 2
        assert port.grants == 2

    def test_grant_duration_occupies_resource(self):
        simd = ThroughputResource("simd", cycles_per_grant=1.0)
        end = simd.grant_duration(5, 10)
        assert end == 15
        assert simd.grant(0) == 15

    def test_grant_duration_rejects_negative(self):
        simd = ThroughputResource("simd")
        with pytest.raises(ValueError):
            simd.grant_duration(0, -1)

    def test_peek_does_not_book(self):
        port = ThroughputResource("port", cycles_per_grant=1.0)
        assert port.peek(3) == 3
        assert port.grant(3) == 3

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            ThroughputResource("bad", cycles_per_grant=0)


class TestWaitQueue:
    def test_wake_one_is_fifo(self):
        queue = WaitQueue("q")
        order = []
        queue.wait(0, lambda t: order.append("first"))
        queue.wait(0, lambda t: order.append("second"))
        queue.wake_one(5)
        assert order == ["first"]
        queue.wake_one(6)
        assert order == ["first", "second"]

    def test_wake_one_on_empty_returns_false(self):
        assert WaitQueue("q").wake_one(0) is False

    def test_wake_all_wakes_everything(self):
        queue = WaitQueue("q")
        woken = []
        for i in range(5):
            queue.wait(0, lambda t, i=i: woken.append(i))
        assert queue.wake_all(9) == 5
        assert woken == [0, 1, 2, 3, 4]
        assert len(queue) == 0

    def test_callbacks_receive_wake_time(self):
        queue = WaitQueue("q")
        times = []
        queue.wait(0, times.append)
        queue.wake_one(42)
        assert times == [42]

    def test_bool_and_counters(self):
        queue = WaitQueue("q")
        assert not queue
        queue.wait(0, lambda t: None)
        assert queue
        assert queue.total_enqueued == 1
