"""Validation and fingerprint semantics of the acceleration configs.

The load-bearing contract is the "exact mode hashes as None" idiom on
:meth:`repro.experiments.jobs.JobSpec.fingerprint`: a job with no
acceleration, a job with a *disabled* :class:`SamplingConfig`, and a job
with a one-shard :class:`ShardConfig` must all produce the identical
fingerprint (so exact results interchange in the store), while any
*enabled* acceleration must change it (so sampled results can never be
served where exact ones were asked for).
"""

from __future__ import annotations

import pytest

from repro.accel import SHARD_AXES, SamplingConfig, ShardConfig
from repro.core.policies import CACHE_RW
from repro.experiments.jobs import JobSpec


class TestSamplingConfigValidation:
    def test_defaults_are_enabled_and_valid(self):
        config = SamplingConfig()
        assert config.enabled and not config.empty

    def test_disabled_config_is_empty(self):
        assert SamplingConfig(enabled=False).empty

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"warmup_instances": -1},
            {"measure_instances": 0},
            {"warmup_instances": 0, "measure_instances": 1},  # sum < 2
            {"intensity_delta": 0.0},
            {"hit_rate_delta": -0.1},
            {"write_fraction_delta": 0.0},
            {"cycle_delta": 0.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SamplingConfig(**kwargs)

    def test_describe_covers_the_thresholds(self):
        described = SamplingConfig().describe()
        assert set(described) == {
            "warmup_instances",
            "measure_instances",
            "intensity_delta",
            "hit_rate_delta",
            "write_fraction_delta",
            "cycle_delta",
        }


class TestShardConfigValidation:
    def test_one_shard_is_empty(self):
        assert ShardConfig(num_shards=1).empty
        assert not ShardConfig(num_shards=2).empty

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_shards": 0},
            {"axis": "bogus"},
            {"epoch_cycles": 0},
            {"timeout_seconds": 0.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ShardConfig(**kwargs)

    def test_every_registered_axis_constructs(self):
        for axis in SHARD_AXES:
            assert ShardConfig(num_shards=2, axis=axis).axis == axis

    def test_describe_excludes_the_host_side_timeout(self):
        described = ShardConfig(num_shards=2, timeout_seconds=30.0).describe()
        assert set(described) == {"num_shards", "axis", "epoch_cycles"}


class TestJobSpecAccelFingerprint:
    def _job(self, **kwargs) -> JobSpec:
        return JobSpec(workload="CM", policy=CACHE_RW, scale=0.2, **kwargs)

    def test_exact_modes_hash_as_none(self):
        """No config, disabled sampling and one shard all hash identically."""
        plain = self._job().fingerprint()
        assert self._job(sampling=SamplingConfig(enabled=False)).fingerprint() == plain
        assert self._job(shards=ShardConfig(num_shards=1)).fingerprint() == plain
        assert (
            self._job(
                sampling=SamplingConfig(enabled=False),
                shards=ShardConfig(num_shards=1),
            ).fingerprint()
            == plain
        )

    def test_enabled_sampling_changes_the_fingerprint(self):
        plain = self._job().fingerprint()
        sampled = self._job(sampling=SamplingConfig()).fingerprint()
        assert sampled != plain

    def test_sharding_changes_the_fingerprint(self):
        plain = self._job().fingerprint()
        sharded = self._job(shards=ShardConfig(num_shards=2)).fingerprint()
        assert sharded != plain

    def test_sampling_parameters_are_load_bearing(self):
        a = self._job(sampling=SamplingConfig(warmup_instances=1)).fingerprint()
        b = self._job(sampling=SamplingConfig(warmup_instances=2)).fingerprint()
        assert a != b

    def test_shard_parameters_are_load_bearing(self):
        a = self._job(shards=ShardConfig(num_shards=2)).fingerprint()
        b = self._job(shards=ShardConfig(num_shards=3)).fingerprint()
        c = self._job(shards=ShardConfig(num_shards=2, epoch_cycles=1000)).fingerprint()
        assert len({a, b, c}) == 3

    def test_summary_mentions_acceleration_only_when_enabled(self):
        assert "sampling" not in self._job().summary()
        assert "shards" not in self._job().summary()
        accel = self._job(
            sampling=SamplingConfig(), shards=ShardConfig(num_shards=2)
        ).summary()
        assert "sampling" in accel and "shards" in accel
