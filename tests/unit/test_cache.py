"""Tests for the set-associative GPU cache model."""

from __future__ import annotations

from typing import Callable, Optional

import pytest

from repro.config import CacheConfig
from repro.core.dirty_block_index import DirtyBlockIndex
from repro.core.reuse_predictor import PredictorConfig, ReusePredictor
from repro.engine import Simulator
from repro.memory.cache import BYPASS_LATENCY, Cache, LineState
from repro.memory.request import AccessType, MemoryRequest
from repro.stats import StatsCollector


class Backend:
    """Downstream stub with configurable latency that records traffic."""

    def __init__(self, sim: Simulator, latency: int = 100) -> None:
        self.sim = sim
        self.latency = latency
        self.requests: list[MemoryRequest] = []

    def __call__(self, request: MemoryRequest, on_done) -> None:
        self.requests.append(request)
        self.sim.schedule(self.latency, lambda: on_done(request))

    @property
    def loads(self) -> int:
        return sum(1 for r in self.requests if r.is_load)

    @property
    def stores(self) -> int:
        return sum(1 for r in self.requests if r.is_store)


def small_config(**overrides) -> CacheConfig:
    defaults = dict(size_bytes=4096, line_bytes=64, assoc=4, hit_latency=10, mshrs=4)
    defaults.update(overrides)
    return CacheConfig(**defaults)


def build_cache(
    sim: Simulator,
    stats: StatsCollector,
    config: Optional[CacheConfig] = None,
    **kwargs,
) -> tuple[Cache, Backend]:
    backend = Backend(sim)
    cache = Cache(
        name="l1.test",
        config=config or small_config(),
        sim=sim,
        stats=stats,
        downstream=backend,
        stat_prefix="l1",
        **kwargs,
    )
    return cache, backend


def load(address: int, pc: int = 0x10) -> MemoryRequest:
    return MemoryRequest(access=AccessType.LOAD, address=address, pc=pc)


def store(address: int, pc: int = 0x20) -> MemoryRequest:
    return MemoryRequest(access=AccessType.STORE, address=address, pc=pc)


def run_access(sim: Simulator, cache: Cache, request: MemoryRequest) -> list[int]:
    completed: list[int] = []
    cache.access(request, lambda r: completed.append(sim.now))
    return completed


class TestHitsAndMisses:
    def test_first_access_misses_and_fetches(self, sim, stats):
        cache, backend = build_cache(sim, stats)
        done = run_access(sim, cache, load(0))
        sim.run()
        assert stats.get("l1.misses") == 1
        assert backend.loads == 1
        assert done and done[0] >= backend.latency

    def test_second_access_hits_without_refetch(self, sim, stats):
        cache, backend = build_cache(sim, stats)
        run_access(sim, cache, load(0))
        sim.run()
        done = run_access(sim, cache, load(0))
        sim.run()
        assert stats.get("l1.hits") == 1
        assert backend.loads == 1
        assert done and done[0] - sim.now <= 0  # completed

    def test_hit_latency_shorter_than_miss_latency(self, sim, stats):
        cache, backend = build_cache(sim, stats)
        miss_done = run_access(sim, cache, load(0))
        sim.run()
        miss_latency = miss_done[0]
        start = sim.now
        hit_done = run_access(sim, cache, load(0))
        sim.run()
        assert hit_done[0] - start < miss_latency

    def test_distinct_lines_do_not_alias(self, sim, stats):
        cache, backend = build_cache(sim, stats)
        run_access(sim, cache, load(0))
        run_access(sim, cache, load(64))
        sim.run()
        assert stats.get("l1.misses") == 2
        assert sorted(cache.contents().keys()) == [0, 64]

    def test_concurrent_misses_to_same_line_coalesce(self, sim, stats):
        cache, backend = build_cache(sim, stats)
        done_a = run_access(sim, cache, load(0))
        done_b = run_access(sim, cache, load(32))  # same 64B line
        sim.run()
        assert backend.loads == 1
        assert stats.get("l1.mshr_coalesced") == 1
        assert done_a and done_b


class TestEvictionAndCapacity:
    def test_capacity_eviction_selects_lru_victim(self, sim, stats):
        config = small_config(size_bytes=4 * 64, assoc=4)  # one set, four ways
        cache, backend = build_cache(sim, stats, config=config)
        for i in range(4):
            run_access(sim, cache, load(i * 64))
            sim.run()
        run_access(sim, cache, load(4 * 64))
        sim.run()
        contents = cache.contents()
        assert 0 not in contents  # line 0 was least recently used
        assert 4 * 64 in contents

    def test_dirty_eviction_writes_back(self, sim, stats):
        config = small_config(size_bytes=4 * 64, assoc=4, writeback=True)
        cache, backend = build_cache(sim, stats, config=config)
        run_access(sim, cache, store(0))
        sim.run()
        for i in range(1, 5):
            run_access(sim, cache, store(i * 64))
            sim.run()
        assert stats.get("l1.eviction_writebacks") == 1
        assert backend.stores >= 1

    def test_clean_eviction_is_silent(self, sim, stats):
        config = small_config(size_bytes=4 * 64, assoc=4)
        cache, backend = build_cache(sim, stats, config=config)
        for i in range(5):
            run_access(sim, cache, load(i * 64))
            sim.run()
        assert stats.get("l1.clean_evictions") == 1
        assert backend.stores == 0


class TestBlockingAllocation:
    def test_set_full_of_pending_fills_blocks_and_counts_stalls(self, sim, stats):
        # one set, 2 ways, slow backend: the third miss must wait
        config = small_config(size_bytes=2 * 64, assoc=2, mshrs=8)
        cache, backend = build_cache(sim, stats, config=config)
        num_sets = config.num_sets
        stride = 64 * num_sets  # same set every time
        for i in range(3):
            run_access(sim, cache, load(i * stride))
        sim.run()
        assert stats.get("l1.blocked_set_busy") >= 1
        assert stats.get("l1.stall_cycles_alloc") > 0
        assert backend.loads == 3  # everything eventually fetched

    def test_mshr_exhaustion_blocks(self, sim, stats):
        config = small_config(size_bytes=64 * 64, assoc=4, mshrs=2)
        cache, backend = build_cache(sim, stats, config=config)
        for i in range(4):
            run_access(sim, cache, load(i * 64))
        sim.run()
        assert stats.get("l1.blocked_mshr_full") >= 1
        assert backend.loads == 4

    def test_blocked_requests_eventually_complete(self, sim, stats):
        config = small_config(size_bytes=2 * 64, assoc=2, mshrs=2)
        cache, backend = build_cache(sim, stats, config=config)
        completions = []
        stride = 64 * config.num_sets
        for i in range(6):
            cache.access(load(i * stride), lambda r: completions.append(r.address))
        sim.run()
        assert len(completions) == 6

    def test_allocation_bypass_avoids_blocking(self, sim, stats):
        config = small_config(size_bytes=2 * 64, assoc=2, mshrs=8)
        cache, backend = build_cache(sim, stats, config=config, allocation_bypass=True)
        stride = 64 * config.num_sets
        for i in range(4):
            run_access(sim, cache, load(i * stride))
        sim.run()
        assert stats.get("l1.blocked_set_busy", 0) == 0
        assert stats.get("l1.allocation_bypasses") >= 1
        assert stats.get("l1.stall_cycles_alloc", 0) == 0


class TestBypassPath:
    def test_policy_bypass_skips_allocation(self, sim, stats):
        cache, backend = build_cache(sim, stats)
        request = load(0)
        request.bypass_l1 = True
        done = run_access(sim, cache, request)
        sim.run()
        assert cache.contents() == {}
        assert stats.get("l1.bypasses") == 1
        assert done

    def test_pending_bypass_loads_coalesce(self, sim, stats):
        cache, backend = build_cache(sim, stats)
        first, second = load(0), load(0)
        first.bypass_l1 = True
        second.bypass_l1 = True
        done = []
        cache.access(first, lambda r: done.append("first"))
        cache.access(second, lambda r: done.append("second"))
        sim.run()
        assert backend.loads == 1
        assert sorted(done) == ["first", "second"]
        assert stats.get("l1.bypass_coalesced") == 1

    def test_bypassed_store_forwards_downstream(self, sim, stats):
        cache, backend = build_cache(sim, stats)
        request = store(0)
        request.bypass_l1 = True
        done = run_access(sim, cache, request)
        sim.run()
        assert backend.stores == 1
        assert done
        assert cache.dirty_line_count() == 0

    def test_bypass_latency_is_small(self, sim, stats):
        cache, backend = build_cache(sim, stats)
        request = load(0)
        request.bypass_l1 = True
        done = run_access(sim, cache, request)
        sim.run()
        assert done[0] <= BYPASS_LATENCY + backend.latency + 2


class TestWriteCombining:
    def test_store_allocates_dirty_without_fetch(self, sim, stats):
        config = small_config(writeback=True)
        cache, backend = build_cache(sim, stats, config=config)
        done = run_access(sim, cache, store(0))
        sim.run()
        assert backend.requests == []  # no fetch, no write-through
        assert cache.dirty_line_count() == 1
        assert done

    def test_repeated_stores_to_line_coalesce(self, sim, stats):
        config = small_config(writeback=True)
        cache, backend = build_cache(sim, stats, config=config)
        for offset in (0, 4, 8, 32):
            run_access(sim, cache, store(offset))
            sim.run()
        assert cache.dirty_line_count() == 1
        assert stats.get("l1.store_hits") == 3
        assert backend.stores == 0

    def test_write_through_cache_forwards_store_hits(self, sim, stats):
        config = small_config(writeback=False)
        cache, backend = build_cache(sim, stats, config=config)
        run_access(sim, cache, load(0))
        sim.run()
        run_access(sim, cache, store(0))
        sim.run()
        assert stats.get("l1.writethrough_stores") == 1
        assert backend.stores == 1
        assert cache.dirty_line_count() == 0


class TestInvalidationAndFlush:
    def test_invalidate_clean_drops_valid_lines(self, sim, stats):
        cache, backend = build_cache(sim, stats)
        for i in range(4):
            run_access(sim, cache, load(i * 64))
            sim.run()
        dropped = cache.invalidate_clean()
        assert dropped == 4
        assert cache.contents() == {}

    def test_invalidate_clean_preserves_dirty_lines(self, sim, stats):
        config = small_config(writeback=True)
        cache, backend = build_cache(sim, stats, config=config)
        run_access(sim, cache, store(0))
        run_access(sim, cache, load(64))
        sim.run()
        cache.invalidate_clean()
        contents = cache.contents()
        assert contents.get(0) == LineState.DIRTY
        assert 64 not in contents

    def test_flush_writes_back_all_dirty_lines(self, sim, stats):
        config = small_config(writeback=True)
        cache, backend = build_cache(sim, stats, config=config)
        for i in range(6):
            run_access(sim, cache, store(i * 64))
        sim.run()
        flushed = []
        cache.flush_dirty(lambda: flushed.append(sim.now))
        sim.run()
        assert backend.stores == 6
        assert flushed
        assert cache.dirty_line_count() == 0

    def test_flush_keep_clean_retains_data(self, sim, stats):
        config = small_config(writeback=True)
        cache, backend = build_cache(sim, stats, config=config)
        run_access(sim, cache, store(0))
        sim.run()
        cache.flush_dirty(lambda: None, keep_clean=True)
        sim.run()
        assert cache.contents().get(0) == LineState.VALID

    def test_flush_with_nothing_dirty_completes_immediately(self, sim, stats):
        cache, backend = build_cache(sim, stats)
        called = []
        cache.flush_dirty(lambda: called.append(True))
        sim.run()
        assert called == [True]
        assert backend.stores == 0


class TestOptimizationHooks:
    def test_dirty_block_index_rinses_row_on_eviction(self, sim, stats):
        # map every line to the same DRAM row so a dirty eviction rinses peers
        dbi = DirtyBlockIndex(row_of=lambda addr: 0)
        config = small_config(size_bytes=4 * 64, assoc=4, writeback=True)
        cache, backend = build_cache(
            sim, stats, config=config, dirty_block_index=dbi, row_of=lambda addr: 0
        )
        for i in range(4):
            run_access(sim, cache, store(i * 64))
            sim.run()
        run_access(sim, cache, store(4 * 64))  # forces a dirty eviction
        sim.run()
        assert stats.get("l1.rinse_writebacks") >= 1
        assert backend.stores >= 2

    def test_reuse_predictor_bypasses_dead_pcs(self, sim, stats):
        predictor = ReusePredictor(PredictorConfig(bypass_threshold=2, initial_value=0))
        cache, backend = build_cache(sim, stats, reuse_predictor=predictor)
        # a PC whose counter is below threshold should bypass on non-sampler sets
        request = load(17 * 64, pc=0x1234)  # set 17 is not a sampler set (17 % 16 != 0)
        run_access(sim, cache, request)
        sim.run()
        assert stats.get("l1.predictor_bypasses") == 1
        assert cache.contents() == {}

    def test_sampler_sets_cache_despite_prediction(self, sim, stats):
        predictor = ReusePredictor(PredictorConfig(bypass_threshold=2, initial_value=0))
        cache, backend = build_cache(sim, stats, reuse_predictor=predictor)
        request = load(0, pc=0x1234)  # set 0 is a sampler set
        run_access(sim, cache, request)
        sim.run()
        assert stats.get("l1.predictor_bypasses", 0) == 0
        assert 0 in cache.contents()

    def test_dbi_requires_row_mapping(self, sim, stats):
        with pytest.raises(ValueError):
            Cache(
                name="bad",
                config=small_config(),
                sim=sim,
                stats=stats,
                downstream=lambda r, cb: None,
                stat_prefix="l1",
                dirty_block_index=DirtyBlockIndex(row_of=lambda a: 0),
            )


class TestIndexedGeometry:
    """The cache caches its geometry and inlines the set-index arithmetic.

    The inline math in ``Cache._lookup``/``_locate``/``_is_sampler_set``/
    ``_bypass_access`` must stay exactly equivalent to the canonical
    ``CacheConfig.set_index``/``line_address`` helpers -- if the indexing
    scheme ever changes (e.g. hashed set indexing), this test points at the
    divergence instead of letting hit/miss behaviour drift silently.
    """

    @pytest.mark.parametrize(
        "config",
        [
            small_config(),
            small_config(size_bytes=16 * 1024, assoc=16),
            small_config(size_bytes=64, assoc=4),  # single-set edge case
        ],
        ids=["small", "16way", "single_set"],
    )
    def test_inline_index_math_matches_config_helpers(self, config):
        sim, stats = Simulator(), StatsCollector()
        cache, _ = build_cache(sim, stats, config=config)
        addresses = [0, 1, 63, 64, 65, 4095, 4096, 12345, 2**20 + 17]
        for address in addresses:
            inline_set = (address // cache._line_bytes) % cache._num_sets
            inline_line = address - (address % cache._line_bytes)
            assert inline_set == config.set_index(address), hex(address)
            assert inline_line == config.line_address(address), hex(address)
        assert cache._num_sets == config.num_sets
        assert cache._line_bytes == config.line_bytes

    def test_tag_map_tracks_installed_lines(self, sim, stats):
        cache, _ = build_cache(sim, stats)
        request = load(0x1000)
        run_access(sim, cache, request)
        sim.run()
        set_index = cache.config.set_index(0x1000)
        assert cache._tag_to_way[set_index].get(0x1000) is not None
        cache.invalidate_clean()
        assert 0x1000 not in cache._tag_to_way[set_index]
