"""Tests for memory requests, replacement policies and MSHRs."""

from __future__ import annotations

import pytest

from repro.memory.mshr import MshrFile
from repro.memory.replacement import LruReplacement, RandomReplacement, make_replacement
from repro.memory.request import AccessType, MemoryRequest


class TestMemoryRequest:
    def test_load_and_store_flags(self):
        load = MemoryRequest(access=AccessType.LOAD, address=0)
        store = MemoryRequest(access=AccessType.STORE, address=64)
        assert load.is_load and not load.is_store
        assert store.is_store and not store.is_load

    def test_line_address(self):
        req = MemoryRequest(access=AccessType.LOAD, address=200)
        assert req.line_address(64) == 192

    def test_request_ids_are_unique(self):
        a = MemoryRequest(access=AccessType.LOAD, address=0)
        b = MemoryRequest(access=AccessType.LOAD, address=0)
        assert a.req_id != b.req_id

    def test_complete_invokes_callback_once(self):
        seen = []
        req = MemoryRequest(access=AccessType.LOAD, address=0, issue_cycle=10)
        req.on_complete = seen.append
        req.complete(150)
        assert seen == [req]
        assert req.latency == 140
        with pytest.raises(RuntimeError):
            req.complete(200)

    def test_latency_is_none_before_completion(self):
        req = MemoryRequest(access=AccessType.LOAD, address=0)
        assert req.latency is None

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            MemoryRequest(access=AccessType.LOAD, address=-4)


class TestLruReplacement:
    def test_victim_is_least_recently_used(self):
        lru = LruReplacement(num_sets=2, assoc=4)
        for way in range(4):
            lru.on_fill(0, way, cycle=way)
        lru.on_access(0, 0, cycle=100)
        assert lru.select_victim(0, [0, 1, 2, 3]) == 1

    def test_victim_restricted_to_candidates(self):
        lru = LruReplacement(num_sets=1, assoc=4)
        for way in range(4):
            lru.on_fill(0, way, cycle=way)
        assert lru.select_victim(0, [2, 3]) == 2

    def test_untouched_ways_preferred(self):
        lru = LruReplacement(num_sets=1, assoc=4)
        lru.on_fill(0, 0, cycle=5)
        assert lru.select_victim(0, [0, 1]) == 1

    def test_empty_candidates_rejected(self):
        lru = LruReplacement(num_sets=1, assoc=2)
        with pytest.raises(ValueError):
            lru.select_victim(0, [])


class TestRandomReplacement:
    def test_victim_always_among_candidates(self):
        rng = RandomReplacement(num_sets=1, assoc=8)
        for _ in range(100):
            assert rng.select_victim(0, [1, 3, 5]) in (1, 3, 5)

    def test_deterministic_for_same_seed(self):
        a = RandomReplacement(1, 8, seed=7)
        b = RandomReplacement(1, 8, seed=7)
        picks_a = [a.select_victim(0, list(range(8))) for _ in range(20)]
        picks_b = [b.select_victim(0, list(range(8))) for _ in range(20)]
        assert picks_a == picks_b


class TestReplacementFactory:
    def test_factory_builds_both_kinds(self):
        assert isinstance(make_replacement("lru", 4, 4), LruReplacement)
        assert isinstance(make_replacement("random", 4, 4), RandomReplacement)

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_replacement("plru", 4, 4)


def _req(address: int) -> MemoryRequest:
    return MemoryRequest(access=AccessType.LOAD, address=address)


class TestMshrFile:
    def test_allocate_and_lookup(self):
        mshrs = MshrFile(capacity=4)
        entry = mshrs.allocate(0x1000, _req(0x1000), cycle=5, allocate_way=2)
        assert mshrs.lookup(0x1000) is entry
        assert entry.allocate_way == 2
        assert len(mshrs) == 1

    def test_full_detection(self):
        mshrs = MshrFile(capacity=2)
        mshrs.allocate(0, _req(0), 0)
        assert not mshrs.full
        mshrs.allocate(64, _req(64), 0)
        assert mshrs.full

    def test_unlimited_capacity_never_full(self):
        mshrs = MshrFile(capacity=None)
        for i in range(1000):
            mshrs.allocate(i * 64, _req(i * 64), 0)
        assert not mshrs.full

    def test_coalesce_attaches_waiters(self):
        mshrs = MshrFile(capacity=4)
        primary = _req(0)
        mshrs.allocate(0, primary, 0)
        waiter = _req(0)
        entry = mshrs.coalesce(0, waiter)
        assert entry.all_requests == [primary, waiter]
        assert mshrs.total_coalesced == 1

    def test_coalesce_without_entry_raises(self):
        with pytest.raises(KeyError):
            MshrFile(4).coalesce(0, _req(0))

    def test_release_removes_entry(self):
        mshrs = MshrFile(capacity=2)
        mshrs.allocate(0, _req(0), 0)
        entry = mshrs.release(0)
        assert entry.line_address == 0
        assert mshrs.lookup(0) is None
        with pytest.raises(KeyError):
            mshrs.release(0)

    def test_double_allocate_rejected(self):
        mshrs = MshrFile(capacity=4)
        mshrs.allocate(0, _req(0), 0)
        with pytest.raises(RuntimeError):
            mshrs.allocate(0, _req(0), 0)

    def test_allocate_when_full_rejected(self):
        mshrs = MshrFile(capacity=1)
        mshrs.allocate(0, _req(0), 0)
        with pytest.raises(RuntimeError):
            mshrs.allocate(64, _req(64), 0)

    def test_peak_occupancy_tracked(self):
        mshrs = MshrFile(capacity=8)
        for i in range(5):
            mshrs.allocate(i * 64, _req(i * 64), 0)
        for i in range(5):
            mshrs.release(i * 64)
        assert mshrs.peak_occupancy == 5
