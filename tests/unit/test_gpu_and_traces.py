"""Tests for the coalescer, LDS filter, trace data model and tensors."""

from __future__ import annotations

import pytest

from repro.gpu.coalescer import coalesce_addresses, coalesced_lines_for_stride, strided_lane_addresses
from repro.gpu.lds import LdsFilter
from repro.memory.request import AccessType
from repro.workloads.tensor import AddressSpace, Tensor
from repro.workloads.trace import (
    ComputeInstr,
    KernelTrace,
    MemInstr,
    WavefrontProgram,
    WorkloadTrace,
)


class TestCoalescer:
    def test_unit_stride_float32_wavefront_touches_four_lines(self):
        addresses = strided_lane_addresses(base=0, element_bytes=4, stride_elements=1, lanes=64)
        lines = coalesce_addresses(addresses)
        assert lines == (0, 64, 128, 192)

    def test_same_line_accesses_merge_to_one(self):
        lines = coalesce_addresses([0, 4, 8, 60])
        assert lines == (0,)

    def test_divergent_accesses_keep_distinct_lines(self):
        addresses = [i * 4096 for i in range(16)]
        assert len(coalesce_addresses(addresses)) == 16

    def test_order_is_first_touch(self):
        assert coalesce_addresses([128, 0, 130, 64]) == (128, 0, 64)

    def test_stride_two_doubles_line_count(self):
        unit = coalesced_lines_for_stride(0, 4, 1, 64)
        strided = coalesced_lines_for_stride(0, 4, 2, 64)
        assert len(strided) == 2 * len(unit)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            coalesce_addresses([])

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            coalesce_addresses([-4])


class TestLdsFilter:
    def test_first_touch_misses_then_hits(self):
        lds = LdsFilter(capacity_bytes=1024)
        assert lds.access(0) is False
        assert lds.access(16) is True  # same line staged
        assert lds.hits == 1 and lds.misses == 1

    def test_capacity_eviction_is_fifo(self):
        lds = LdsFilter(capacity_bytes=2 * 64)
        lds.access(0)
        lds.access(64)
        lds.access(128)  # evicts line 0
        assert lds.access(0) is False

    def test_reset_forgets_everything(self):
        lds = LdsFilter(capacity_bytes=1024)
        lds.access(0)
        lds.reset()
        assert lds.access(0) is False
        assert lds.staged_lines == 1

    def test_hit_rate(self):
        lds = LdsFilter(capacity_bytes=1024)
        lds.access(0)
        lds.access(0)
        lds.access(0)
        assert lds.hit_rate == pytest.approx(2 / 3)


class TestTensorAndAddressSpace:
    def test_address_of_is_linear(self):
        tensor = Tensor("x", num_elements=100, element_bytes=4, base_address=4096)
        assert tensor.address_of(0) == 4096
        assert tensor.address_of(10) == 4096 + 40

    def test_address_of_wraps(self):
        tensor = Tensor("x", num_elements=10, element_bytes=4, base_address=0)
        assert tensor.address_of(12) == tensor.address_of(2)

    def test_element_range(self):
        tensor = Tensor("x", num_elements=100, element_bytes=8, base_address=0)
        assert tensor.element_range(2, 3) == [16, 24, 32]

    def test_lines_rounds_up(self):
        tensor = Tensor("x", num_elements=17, element_bytes=4, base_address=0)
        assert tensor.lines(64) == 2

    def test_allocation_is_aligned_and_non_overlapping(self):
        space = AddressSpace(alignment=4096)
        a = space.allocate("a", 100)
        b = space.allocate("b", 200)
        assert a.base_address % 4096 == 0
        assert b.base_address % 4096 == 0
        assert b.base_address >= a.end_address
        assert space.overlapping() == []

    def test_allocate_like_copies_shape(self):
        space = AddressSpace()
        a = space.allocate("a", 128, element_bytes=8)
        b = space.allocate_like("b", a)
        assert b.num_elements == 128 and b.element_bytes == 8

    def test_invalid_tensor_rejected(self):
        with pytest.raises(ValueError):
            Tensor("bad", num_elements=0, element_bytes=4, base_address=0)


class TestTraceModel:
    def _program(self) -> WavefrontProgram:
        program = WavefrontProgram()
        program.append(MemInstr(AccessType.LOAD, (0, 64), pc=0x10))
        program.append(ComputeInstr(5))
        program.append(MemInstr(AccessType.STORE, (128,), pc=0x18))
        return program

    def test_program_accounting(self):
        program = self._program()
        assert len(program) == 3
        assert program.line_requests == 3
        assert program.vector_ops == 5
        assert len(program.memory_instructions) == 2

    def test_kernel_accounting(self):
        kernel = KernelTrace("k", [self._program(), self._program()])
        assert kernel.num_wavefronts == 2
        assert kernel.line_requests == 6
        assert kernel.load_lines == 4
        assert kernel.store_lines == 2
        assert kernel.touched_lines() == {0, 64, 128}

    def test_workload_footprint(self):
        trace = WorkloadTrace("w", [KernelTrace("k", [self._program()])])
        assert trace.footprint_bytes(64) == 3 * 64
        assert trace.num_kernels == 1
        assert trace.vector_ops == 5

    def test_unique_kernel_names_preserve_order(self):
        trace = WorkloadTrace("w")
        for name in ("gemm", "relu", "gemm", "pool"):
            trace.add_kernel(KernelTrace(name, [self._program()]))
        assert trace.unique_kernel_names == ["gemm", "relu", "pool"]

    def test_summary_fields(self):
        trace = WorkloadTrace("w", [KernelTrace("k", [self._program()])])
        summary = trace.summary()
        assert summary["name"] == "w"
        assert summary["kernels"] == 1
        assert summary["line_requests"] == 3

    def test_invalid_instructions_rejected(self):
        with pytest.raises(ValueError):
            ComputeInstr(0)
        with pytest.raises(ValueError):
            MemInstr(AccessType.LOAD, (), pc=0)
        with pytest.raises(ValueError):
            MemInstr(AccessType.LOAD, (0,), pc=-1)
