"""Unit tests for the cross-run observability layer (:mod:`repro.obs`).

Covers the four pieces the layer is built from -- robust regression
statistics, the append-only run ledger, counter diffing, and the anomaly
detectors -- plus the run-scoped structured logger they share.  Every
test here is synthetic (no simulations): the end-to-end behaviour on real
runs is pinned by ``tests/integration/test_obs_end_to_end.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.config import scaled_config
from repro.ioutil import append_jsonl, read_jsonl
from repro.log import StructuredLogger, configure, get_logger, reset
from repro.obs.alerts import Alert, AlertConfig, detect_anomalies
from repro.obs.bench import (
    BenchMeasurement,
    append_history,
    committed_baseline,
    load_history,
)
from repro.obs.config import ObsConfig
from repro.obs.diff import diff_reports, render_diff_markdown, render_diff_table, resolve_report
from repro.obs.ledger import RunLedger, component_digests, run_entry
from repro.stats.regression import check_regression, mad, median, robust_floor
from repro.stats.report import RunReport

MAD_TO_SIGMA = 1.4826


# ----------------------------------------------------------------------
# robust regression statistics
# ----------------------------------------------------------------------
class TestRegressionStats:
    def test_median_odd_and_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 3.0, 2.0]) == 2.5
        with pytest.raises(ValueError):
            median([])

    def test_mad_measures_spread_around_median(self):
        assert mad([1.0, 1.0, 1.0]) == 0.0
        # deviations from median 2: [1, 0, 1] -> median 1
        assert mad([1.0, 2.0, 3.0]) == 1.0

    def test_mad_shrugs_off_an_outlier(self):
        # one wild sample moves the mean wildly but not the MAD
        clean = mad([100.0, 101.0, 99.0, 100.0, 100.0])
        dirty = mad([100.0, 101.0, 99.0, 100.0, 1000.0])
        assert dirty <= clean + 1.0

    def test_robust_floor_zero_spread_history(self):
        # identical samples: the min_mad_fraction floor keeps the gate open
        floor = robust_floor([100.0] * 5, mad_factor=4.0, min_mad_fraction=0.02)
        assert floor == pytest.approx(100.0 - 4.0 * MAD_TO_SIGMA * 2.0)
        with pytest.raises(ValueError):
            robust_floor([])

    def test_check_regression_nothing_armed_passes(self):
        verdict = check_regression(50.0)
        assert verdict.ok
        assert verdict.reasons == []
        assert verdict.baseline_floor is None
        assert verdict.history_floor is None

    def test_check_regression_committed_gate(self):
        ok = check_regression(95.0, committed_baseline=100.0, max_regression=0.1)
        assert ok.ok and ok.baseline_floor == pytest.approx(90.0)
        bad = check_regression(80.0, committed_baseline=100.0, max_regression=0.1)
        assert not bad.ok
        assert "committed-baseline floor" in bad.reasons[0]

    def test_check_regression_history_gate_arms_at_min_history(self):
        history = [100.0] * 4
        verdict = check_regression(10.0, history=history, min_history=5)
        assert verdict.ok  # four samples: gate not armed yet
        assert verdict.history_floor is None
        verdict = check_regression(10.0, history=history + [100.0], min_history=5)
        assert not verdict.ok
        assert verdict.history_floor is not None
        assert verdict.history_samples == 5

    def test_check_regression_history_gate_is_outlier_robust(self):
        # one crazy-fast historical sample must not drag the floor up
        history = [100.0, 101.0, 99.0, 100.0, 1000.0]
        verdict = check_regression(95.0, history=history)
        assert verdict.ok, verdict.reasons

    def test_check_regression_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            check_regression(1.0, max_regression=-0.1)
        with pytest.raises(ValueError):
            check_regression(1.0, min_history=0)

    def test_verdict_as_dict_round_trips_json(self):
        verdict = check_regression(60.0, committed_baseline=100.0, history=[90.0] * 6)
        blob = json.loads(json.dumps(verdict.as_dict()))
        assert blob["ok"] is False
        assert blob["history_samples"] == 6
        assert isinstance(blob["reasons"], list) and blob["reasons"]


# ----------------------------------------------------------------------
# jsonl plumbing
# ----------------------------------------------------------------------
class TestJsonlPlumbing:
    def test_append_and_read_round_trip(self, tmp_path):
        path = tmp_path / "x.jsonl"
        append_jsonl(path, {"a": 1})
        append_jsonl(path, {"b": 2})
        assert read_jsonl(path) == [{"a": 1}, {"b": 2}]

    def test_read_tolerates_torn_tail_and_garbage(self, tmp_path):
        path = tmp_path / "x.jsonl"
        append_jsonl(path, {"a": 1})
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"torn": tru')  # crashed writer mid-record
        assert read_jsonl(path) == [{"a": 1}]

    def test_read_missing_file_is_empty(self, tmp_path):
        assert read_jsonl(tmp_path / "absent.jsonl") == []


# ----------------------------------------------------------------------
# structured logging
# ----------------------------------------------------------------------
class TestStructuredLog:
    @pytest.fixture(autouse=True)
    def _clean_logging_state(self):
        reset()
        yield
        reset()

    def test_disabled_by_default(self, tmp_path, capsys):
        log = get_logger("test")
        assert not log.enabled
        log.warning("something", n=1)
        assert capsys.readouterr().err == ""

    def test_json_lines_to_file(self, tmp_path):
        path = tmp_path / "run.log"
        configure(level="info", path=str(path), json_lines=True)
        log = get_logger("executor", sweep="demo")
        assert log.enabled
        log.warning("batch_attempt_failed", failed=3)
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["event"] == "batch_attempt_failed"
        assert record["level"] == "warning"
        assert record["logger"] == "executor"
        assert record["failed"] == 3
        assert record["sweep"] == "demo"  # bound field rides along
        assert isinstance(record["ts"], float)

    def test_level_filtering(self, tmp_path):
        path = tmp_path / "run.log"
        configure(level="warning", path=str(path), json_lines=True)
        log = get_logger("test")
        log.info("quiet")
        log.error("loud")
        events = [json.loads(line)["event"] for line in path.read_text().splitlines()]
        assert events == ["loud"]

    def test_reset_disables(self, tmp_path):
        path = tmp_path / "run.log"
        configure(level="info", path=str(path))
        assert get_logger("x").enabled
        reset()
        assert not get_logger("x").enabled
        get_logger("x").error("dropped")
        assert not path.exists() or "dropped" not in path.read_text()

    def test_logger_type(self):
        assert isinstance(get_logger("anything"), StructuredLogger)


# ----------------------------------------------------------------------
# run ledger
# ----------------------------------------------------------------------
def _entry(index: int = 0) -> dict:
    return run_entry(
        kind="run",
        fingerprint_hex=f"{index:02d}" + "ab" * 31,
        workload="CM",
        policy="CacheRW",
        cycles=1000 + index,
        counters={"l2.hits": 10 + index},
        wall_seconds=0.5,
        events=1000,
    )


class TestRunLedger:
    def test_record_stamps_provenance(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        stamped = ledger.record(_entry())
        assert stamped["schema"] == 1
        assert isinstance(stamped["ts"], float)
        assert stamped["python"] and stamped["host"] is not None
        assert stamped["events_per_sec"] == 2000
        assert len(ledger) == 1
        assert ledger.entries()[0] == stamped

    def test_run_entry_omits_absent_fields(self):
        entry = run_entry(kind="sweep", fingerprint_hex=None, workload="x", policy="*")
        assert "cycles" not in entry and "counters" not in entry
        assert "wall_seconds" not in entry and "alerts" not in entry

    def test_find_by_index_and_prefix(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        for index in range(3):
            ledger.record(_entry(index))
        assert ledger.find("-1")["cycles"] == 1002
        assert ledger.find("0")["cycles"] == 1000
        assert ledger.find("99") is None
        # prefix: newest match wins
        found = ledger.find("01ab")
        assert found is not None and found["cycles"] == 1001
        assert ledger.find("01a") is None  # too short to be a prefix
        assert ledger.find("ffff") is None

    def test_tail(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        for index in range(4):
            ledger.record(_entry(index))
        assert [e["cycles"] for e in ledger.tail(2)] == [1002, 1003]
        with pytest.raises(ValueError):
            ledger.tail(0)

    def test_prune_keep(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        for index in range(5):
            ledger.record(_entry(index))
        assert ledger.prune(keep=2) == 3
        assert [e["cycles"] for e in ledger.entries()] == [1003, 1004]
        assert ledger.prune(keep=2) == 0  # idempotent

    def test_prune_max_age_keeps_fresh_entries(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.record(_entry())
        assert ledger.prune(max_age_days=1.0) == 0
        assert len(ledger) == 1

    def test_prune_requires_a_criterion(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        with pytest.raises(ValueError):
            ledger.prune()
        with pytest.raises(ValueError):
            ledger.prune(keep=-1)

    def test_alien_schema_lines_ignored(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        append_jsonl(path, {"schema": 999, "kind": "run"})
        ledger = RunLedger(path)
        ledger.record(_entry())
        assert len(ledger) == 1

    def test_component_digests(self):
        digests = component_digests(config=scaled_config(2), topology=None)
        assert digests["topology"] is None
        assert isinstance(digests["config"], str) and len(digests["config"]) == 64
        assert digests == component_digests(config=scaled_config(2), topology=None)
        assert digests["config"] != component_digests(config=scaled_config(4))["config"]


# ----------------------------------------------------------------------
# anomaly detectors
# ----------------------------------------------------------------------
def _window(start: int, end: int, **counters: int) -> dict:
    return {"start": start, "end": end, "counters": dict(counters)}


def _report(windows: list[dict], counters: dict | None = None, cycles: int = 1000) -> RunReport:
    return RunReport(
        workload="CM",
        policy="CacheRW",
        cycles=cycles,
        counters=counters or {},
        metrics=windows,
    )


class TestAlertConfig:
    def test_defaults_validate(self):
        assert AlertConfig().availability_budget == 0.95

    @pytest.mark.parametrize(
        "overrides",
        [
            {"hit_rate_cliff": 0.0},
            {"hit_rate_cliff": 1.5},
            {"starvation_share": 1.0},
            {"availability_budget": 1.5},
            {"min_window_accesses": 0},
            {"min_window_traffic": 0},
            {"default_metrics_interval": 0},
        ],
    )
    def test_bad_thresholds_rejected(self, overrides):
        with pytest.raises(ValueError):
            AlertConfig(**overrides)


class TestHitRateCliff:
    def test_cliff_fires(self):
        windows = [
            _window(0, 100, **{"l2.accesses": 100, "l2.hits": 80}),
            _window(100, 200, **{"l2.accesses": 100, "l2.hits": 10}),
        ]
        alerts = detect_anomalies(_report(windows))
        assert [a.kind for a in alerts] == ["hit_rate_cliff"]
        alert = alerts[0]
        assert alert.severity == "warning"
        assert alert.cycle == 200
        assert alert.value == pytest.approx(0.1)
        assert "0.80 -> 0.10" in alert.message

    def test_thin_windows_not_judged(self):
        # same collapse, but the second window has too little traffic
        windows = [
            _window(0, 100, **{"l2.accesses": 100, "l2.hits": 80}),
            _window(100, 200, **{"l2.accesses": 10, "l2.hits": 0}),
        ]
        assert detect_anomalies(_report(windows)) == []

    def test_gentle_slope_not_judged(self):
        windows = [
            _window(0, 100, **{"l2.accesses": 100, "l2.hits": 80}),
            _window(100, 200, **{"l2.accesses": 100, "l2.hits": 70}),
        ]
        assert detect_anomalies(_report(windows)) == []

    def test_recovery_is_not_a_cliff(self):
        # the rate going UP is not an anomaly
        windows = [
            _window(0, 100, **{"l2.accesses": 100, "l2.hits": 10}),
            _window(100, 200, **{"l2.accesses": 100, "l2.hits": 80}),
        ]
        assert detect_anomalies(_report(windows)) == []


class TestStarvation:
    def _mix_windows(self) -> list[dict]:
        # two tenants, four windows; stream 1 collapses in the middle ones
        return [
            _window(0, 100, **{"stream0.mem_requests": 50, "stream1.mem_requests": 50}),
            _window(100, 200, **{"stream0.mem_requests": 98, "stream1.mem_requests": 2}),
            _window(200, 300, **{"stream0.mem_requests": 99, "stream1.mem_requests": 1}),
            _window(300, 400, **{"stream0.mem_requests": 50, "stream1.mem_requests": 50}),
        ]

    def test_starvation_fires_inside_active_span(self):
        alerts = detect_anomalies(_report(self._mix_windows()))
        assert [a.kind for a in alerts] == ["stream_starvation"] * 2
        assert all(a.stream == 1 for a in alerts)
        assert [a.cycle for a in alerts] == [200, 300]

    def test_partitioned_dispatch_gates_detector(self):
        assert detect_anomalies(_report(self._mix_windows()), shared_dispatch=False) == []

    def test_span_edges_not_judged(self):
        # stream 1 launches late and finishes early: zero traffic outside its
        # span is a lifetime, not starvation
        windows = [
            _window(0, 100, **{"stream0.mem_requests": 100}),
            _window(100, 200, **{"stream0.mem_requests": 50, "stream1.mem_requests": 50}),
            _window(200, 300, **{"stream0.mem_requests": 100}),
        ]
        assert detect_anomalies(_report(windows)) == []

    def test_single_tenant_never_starves(self):
        windows = [
            _window(0, 100, **{"stream0.mem_requests": 100}),
            _window(100, 200, **{"stream0.mem_requests": 1}),
            _window(200, 300, **{"stream0.mem_requests": 100}),
        ]
        assert detect_anomalies(_report(windows)) == []

    def test_quiet_windows_not_judged(self):
        windows = self._mix_windows()
        for window in windows[1:3]:
            # scale the collapse windows below min_window_traffic
            window["counters"] = {
                name: value // 10 for name, value in window["counters"].items()
            }
        assert detect_anomalies(_report(windows)) == []


class TestAvailabilityBreach:
    def test_breach_fires_critical(self):
        report = _report(
            [],
            counters={"faults.injected": 2, "faults.degraded_cycles": 200},
            cycles=1000,
        )
        alerts = detect_anomalies(report)
        assert [a.kind for a in alerts] == ["availability_breach"]
        assert alerts[0].severity == "critical"
        assert alerts[0].value == pytest.approx(0.8)
        assert alerts[0].cycle == 1000

    def test_healthy_fault_run_quiet(self):
        report = _report(
            [],
            counters={"faults.injected": 1, "faults.degraded_cycles": 10},
            cycles=1000,
        )
        assert detect_anomalies(report) == []

    def test_no_faults_no_breach(self):
        # a fault-free run is not judged even with zero cycles of margin
        assert detect_anomalies(_report([], counters={}, cycles=10)) == []


class TestAlertSerialization:
    def test_as_dict_omits_absent_stream(self):
        alert = Alert("availability_breach", "critical", "m", 10, 0.5, 0.95)
        assert "stream" not in alert.as_dict()
        tenant = Alert("stream_starvation", "warning", "m", 10, 0.1, 0.2, stream=3)
        assert tenant.as_dict()["stream"] == 3

    def test_report_round_trips_alerts(self):
        report = _report([])
        report.alerts = [
            Alert("hit_rate_cliff", "warning", "m", 10, 0.1, 0.25).as_dict()
        ]
        blob = report.to_dict()
        assert blob["alerts"] == report.alerts
        assert RunReport.from_dict(blob).alerts == report.alerts

    def test_plain_report_blob_has_no_alerts_key(self):
        assert "alerts" not in _report([]).to_dict()


# ----------------------------------------------------------------------
# counter diffing
# ----------------------------------------------------------------------
def _make_report(**counter_overrides: int) -> RunReport:
    counters = {
        "l1.accesses": 100,
        "l1.hits": 40,
        "l2.accesses": 60,
        "l2.hits": 30,
        "dram.accesses": 30,
        "gpu.mem_requests": 100,
    }
    counters.update(counter_overrides)
    return RunReport(workload="CM", policy="CacheRW", cycles=5000, counters=counters)


class TestDiffReports:
    def test_identical_runs_zero_drift(self):
        diff = diff_reports(_make_report(), _make_report())
        assert diff["identical"] is True
        assert diff["counters"]["changed"] == 0
        assert diff["counters"]["rows"] == []
        assert diff["cycles"]["delta"] == 0
        for signal in diff["derived"].values():
            assert signal["delta"] == pytest.approx(0.0)

    def test_changed_counters_listed_with_rel(self):
        diff = diff_reports(_make_report(), _make_report(**{"l2.hits": 15}))
        assert diff["identical"] is False
        assert diff["counters"]["changed"] == 1
        (row,) = diff["counters"]["rows"]
        assert row["counter"] == "l2.hits"
        assert row["delta"] == -15
        assert row["rel"] == pytest.approx(-0.5)
        assert diff["derived"]["l2_hit_rate"]["delta"] == pytest.approx(-0.25)

    def test_threshold_filters_small_changes_but_counts_them(self):
        b = _make_report(**{"l1.hits": 41, "l2.hits": 60})  # +2.5% and +100%
        diff = diff_reports(_make_report(), b, threshold=0.5)
        assert diff["counters"]["changed"] == 2
        assert [row["counter"] for row in diff["counters"]["rows"]] == ["l2.hits"]
        assert diff["counters"]["max_rel_change"] == pytest.approx(1.0)

    def test_one_sided_counter_always_listed(self):
        diff = diff_reports(_make_report(), _make_report(**{"topo.remote": 5}), threshold=0.9)
        rows = {row["counter"]: row for row in diff["counters"]["rows"]}
        assert rows["topo.remote"]["a"] == 0
        assert rows["topo.remote"]["rel"] is None  # no base to relativize

    def test_cycles_drift_alone_breaks_identity(self):
        b = _make_report()
        b.cycles = 5001
        diff = diff_reports(_make_report(), b)
        assert diff["identical"] is False
        assert diff["counters"]["changed"] == 0

    def test_renderers_smoke(self):
        diff = diff_reports(
            _make_report(), _make_report(**{"l2.hits": 15}), a_label="A", b_label="B"
        )
        text = render_diff_table(diff)
        assert "identical: no" in text.lower() and "l2.hits" in text
        markdown = render_diff_markdown(diff)
        assert markdown.startswith("## Run diff") and "| `l2.hits` |" in markdown


class TestResolveReport:
    def test_bare_report_file(self, tmp_path):
        path = tmp_path / "report.json"
        path.write_text(json.dumps(_make_report().to_dict()))
        report, label = resolve_report(str(path))
        assert report.counters == _make_report().counters
        assert label.endswith("report.json")

    def test_store_blob_file(self, tmp_path):
        path = tmp_path / "blob.json"
        path.write_text(json.dumps({"report": _make_report().to_dict(), "meta": {}}))
        report, _ = resolve_report(str(path))
        assert report.cycles == 5000

    def test_run_json_payload_rejected_with_guidance(self, tmp_path):
        # `run --json` emits derived metrics without raw counters: undiffable
        path = tmp_path / "summary.json"
        path.write_text(json.dumps({"workload": "CM", "policy": "CacheRW", "cycles": 1}))
        with pytest.raises(ValueError, match="counters"):
            resolve_report(str(path))

    def test_ledger_reference(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        report = _make_report()
        ledger.record(
            run_entry(
                kind="run",
                fingerprint_hex="ab" * 32,
                workload=report.workload,
                policy=report.policy,
                cycles=report.cycles,
                counters=report.counters,
            )
        )
        resolved, label = resolve_report("-1", ledger=ledger)
        assert resolved.counters == report.counters
        assert label == "ledger:-1"

    def test_ledger_entry_without_counters_rejected(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.record(run_entry(kind="sweep", fingerprint_hex=None, workload="s", policy="*"))
        with pytest.raises(ValueError, match="no counters"):
            resolve_report("-1", ledger=ledger)

    def test_unresolvable_reference(self, tmp_path):
        with pytest.raises(ValueError):
            resolve_report("no-such-thing", ledger=RunLedger(tmp_path / "l.jsonl"))


# ----------------------------------------------------------------------
# bench history (the fast parts; measurement itself is integration-tested)
# ----------------------------------------------------------------------
class TestBenchHistory:
    def _measurement(self, events: int = 1000, seconds=(0.5, 0.4, 0.6)) -> BenchMeasurement:
        return BenchMeasurement(
            benchmark="core_events_per_second",
            events=events,
            cycles=500,
            seconds=tuple(seconds),
        )

    def test_median_of_samples(self):
        measurement = self._measurement()
        assert measurement.samples == 3
        assert measurement.median_seconds == 0.5
        assert measurement.events_per_sec == pytest.approx(2000.0)

    def test_append_and_load(self, tmp_path):
        path = tmp_path / "history.jsonl"
        entry = append_history(path, self._measurement(seconds=(0.5,)))
        assert entry["schema"] == 1
        assert entry["events_per_sec"] == pytest.approx(2000.0)
        append_history(path, self._measurement(seconds=(0.25,)))
        assert load_history(path) == [pytest.approx(2000.0), pytest.approx(4000.0)]

    def test_model_change_starts_fresh_history(self, tmp_path):
        # entries recorded under a different event count (older model) are
        # not comparable and must be dropped, not averaged in
        path = tmp_path / "history.jsonl"
        append_history(path, self._measurement(events=1000, seconds=(0.5,)))
        append_history(path, self._measurement(events=2000, seconds=(0.5,)))
        assert load_history(path) == [pytest.approx(4000.0)]

    def test_history_cap(self, tmp_path):
        path = tmp_path / "history.jsonl"
        for index in range(5):
            append_history(path, self._measurement(seconds=(0.1 + index,)), limit=3)
        assert len(load_history(path)) == 3

    def test_committed_baseline_reads_key(self, tmp_path):
        path = tmp_path / "BENCH_core.json"
        path.write_text(json.dumps({"regression_baseline": 123000}))
        assert committed_baseline(path) == 123000
        assert committed_baseline(tmp_path / "absent.json") is None


class TestObsConfig:
    def test_enabled(self):
        assert not ObsConfig().enabled
        assert ObsConfig(ledger_path="x").enabled
        assert ObsConfig(alerts=AlertConfig()).enabled
