"""Properties of the fast-forward extrapolation math.

These drive :func:`repro.accel.sampling.extrapolate` with synthetic
measurement histories (no simulator in the loop) and pin the contracts
the accuracy guarantees rest on: corrections are the basis mean scaled
by the skip count, declared error bounds are sound and *monotone in the
fraction of work skipped*, set-once absolute counters are never touched,
and per-CU counters carry the group-mass bound that covers round-robin
attribution drift.  A second group checks the kernel-signature identity:
two kernels only count as repeats when they issue the same address
stream.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.sampling import (
    _GroupState,
    extrapolate,
    kernel_signature,
)
from repro.memory.request import AccessType
from repro.workloads.trace import KernelTrace, MemInstr, WavefrontProgram

FAST = settings(max_examples=50, deadline=None)

# one synthetic signature key; extrapolate() only iterates values
SIG = ("k", 1, 1, 1, 1, 1, 0)


def _group(deltas, cycles=None, skipped=0):
    state = _GroupState()
    state.deltas = [dict(d) for d in deltas]
    state.cycle_deltas = list(cycles) if cycles is not None else [100] * len(deltas)
    state.event_deltas = [10] * len(deltas)
    state.skipped = skipped
    return state


class TestExtrapolationCorrections:
    @FAST
    @given(
        values=st.lists(st.integers(min_value=0, max_value=10_000), min_size=2, max_size=6),
        skipped=st.integers(min_value=1, max_value=100),
    )
    def test_addition_is_post_warmup_mean_times_skipped(self, values, skipped):
        warmup = 1
        group = _group([{"l2.accesses": v} for v in values], skipped=skipped)
        result = extrapolate({SIG: group}, warmup)
        basis = values[warmup:]
        expected = round(sum(basis) / len(basis) * skipped)
        assert result.counter_additions["l2.accesses"] == expected

    @FAST
    @given(skipped=st.integers(min_value=0, max_value=50))
    def test_zero_spread_basis_declares_zero_error(self, skipped):
        group = _group([{"l2.accesses": 7}] * 3, skipped=skipped)
        result = extrapolate({SIG: group}, 1)
        assert "l2.accesses" not in result.error_bounds_abs

    def test_groups_without_skips_contribute_nothing(self):
        group = _group([{"l2.accesses": 5}] * 3, skipped=0)
        result = extrapolate({SIG: group}, 1)
        assert result.counter_additions == {}
        assert result.error_bounds_abs == {}
        assert result.executed_kernels == 3 and result.skipped_kernels == 0

    def test_absolute_counters_are_never_extrapolated(self):
        deltas = [
            {"gpu.finish_cycle": 100, "gpu.kernels_total": 4, "stream0.cycles": 50,
             "stream0.finish_cycle": 100, "l2.accesses": 9}
        ] * 3
        result = extrapolate({SIG: _group(deltas, skipped=5)}, 1)
        assert set(result.counter_additions) == {"l2.accesses"}


class TestErrorBoundMonotonicity:
    @FAST
    @given(
        low=st.integers(min_value=0, max_value=1000),
        spread=st.integers(min_value=1, max_value=1000),
        skip_counts=st.lists(
            st.integers(min_value=1, max_value=200), min_size=2, max_size=6, unique=True
        ),
    )
    def test_relative_bound_grows_with_fraction_skipped(self, low, spread, skip_counts):
        """est = bound / final is non-decreasing in the skip count.

        This is the declared-estimate semantics of
        ``SimulationSession._apply_sampling``: more extrapolated work can
        only make the declared *relative* uncertainty larger, never
        launder it away.  The final value is taken from the unrounded
        mean -- integer rounding of the committed addition jitters the
        denominator by up to 0.5, which is noise, not a trend.
        """
        deltas = [{"c": low}, {"c": low}, {"c": low + spread}]
        measured_total = sum(d["c"] for d in deltas)
        basis_mean = (low + low + spread) / 2
        estimates = []
        for skipped in sorted(skip_counts):
            result = extrapolate({SIG: _group(deltas, skipped=skipped)}, 1)
            final = measured_total + basis_mean * skipped
            estimates.append(result.error_bounds_abs["c"] / max(final, 1))
        assert all(a <= b + 1e-12 for a, b in zip(estimates, estimates[1:]))

    @FAST
    @given(
        spread=st.integers(min_value=1, max_value=500),
        skipped=st.integers(min_value=1, max_value=100),
    )
    def test_absolute_bound_is_half_spread_times_skipped(self, spread, skipped):
        deltas = [{"c": 10}, {"c": 10}, {"c": 10 + spread}]
        result = extrapolate({SIG: _group(deltas, skipped=skipped)}, 1)
        assert result.error_bounds_abs["c"] == (spread / 2) * skipped

    @FAST
    @given(
        executed=st.integers(min_value=1, max_value=20),
        skipped=st.integers(min_value=0, max_value=200),
    )
    def test_skipped_fraction_stays_in_unit_interval(self, executed, skipped):
        group = _group([{"c": 1}] * executed, skipped=skipped)
        fraction = extrapolate({SIG: group}, 1).skipped_fraction
        assert 0.0 <= fraction <= 1.0
        assert fraction == skipped / (executed + skipped)


class TestPerCuGroupBound:
    """Round-robin placement drift: per-CU bounds cover the group mass."""

    def test_per_cu_bound_is_at_least_total_group_addition(self):
        deltas = [
            {"link.l1_l2.cu0.transfers": 8, "link.l1_l2.cu1.transfers": 2},
        ] * 3
        result = extrapolate({SIG: _group(deltas, skipped=9)}, 1)
        mass = sum(
            v for k, v in result.counter_additions.items()
            if k.startswith("link.l1_l2.cu")
        )
        assert mass == (8 + 2) * 9
        for name in ("link.l1_l2.cu0.transfers", "link.l1_l2.cu1.transfers"):
            assert result.error_bounds_abs[name] >= mass

    def test_member_seen_only_in_warmup_still_gets_the_group_bound(self):
        """A CU the measured basis never touched can still own exact-run
        mass; its declared bound must cover the group's extrapolated
        total even though its own addition is zero."""
        deltas = [
            {"link.l1_l2.cu2.transfers": 5, "link.l1_l2.cu0.transfers": 5},  # warmup
            {"link.l1_l2.cu0.transfers": 10},
            {"link.l1_l2.cu0.transfers": 10},
        ]
        result = extrapolate({SIG: _group(deltas, skipped=4)}, 1)
        assert result.counter_additions.get("link.l1_l2.cu2.transfers", 0) == 0
        assert result.error_bounds_abs["link.l1_l2.cu2.transfers"] >= 10 * 4

    def test_non_cu_counters_keep_the_tight_spread_bound(self):
        deltas = [{"l2.accesses": 10}] * 3
        result = extrapolate({SIG: _group(deltas, skipped=9)}, 1)
        assert "l2.accesses" not in result.error_bounds_abs


def _kernel(name, line_addresses_per_wf):
    kernel = KernelTrace(name=name)
    for addresses in line_addresses_per_wf:
        program = WavefrontProgram()
        for address in addresses:
            program.append(
                MemInstr(access=AccessType.LOAD, line_addresses=(address,), pc=64)
            )
        kernel.add_wavefront(program)
    return kernel


class TestKernelSignatureIdentity:
    def test_identical_content_in_distinct_objects_matches(self):
        a = _kernel("gemm", [(0, 64, 128)])
        b = _kernel("gemm", [(0, 64, 128)])
        assert a is not b
        assert kernel_signature(a) == kernel_signature(b)

    def test_same_shape_different_addresses_do_not_match(self):
        """The MHA trap: one projection kernel per head, identical shape,
        different base offsets.  Without address identity the sampler
        would extrapolate head 0's cache behaviour over every head."""
        head0 = _kernel("attn_proj", [(0, 64, 128)])
        head1 = _kernel("attn_proj", [(8192, 8256, 8320)])
        assert kernel_signature(head0) != kernel_signature(head1)

    def test_access_kind_is_part_of_the_identity(self):
        load = _kernel("k", [(0,)])
        store = KernelTrace(name="k")
        program = WavefrontProgram()
        program.append(MemInstr(access=AccessType.STORE, line_addresses=(0,), pc=64))
        store.add_wavefront(program)
        assert kernel_signature(load) != kernel_signature(store)

    @FAST
    @given(
        addresses=st.lists(
            st.integers(min_value=0, max_value=1 << 30).map(lambda a: a * 64),
            min_size=1,
            max_size=32,
        )
    )
    def test_signature_is_deterministic(self, addresses):
        a = _kernel("k", [tuple(addresses)])
        b = _kernel("k", [tuple(addresses)])
        assert kernel_signature(a) == kernel_signature(b)
