"""Tests for the discrete-event queue."""

from __future__ import annotations

import pytest

from repro.engine.event_queue import EventQueue


class TestScheduling:
    def test_events_fire_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.schedule(30, lambda: order.append("c"))
        queue.schedule(10, lambda: order.append("a"))
        queue.schedule(20, lambda: order.append("b"))
        queue.run()
        assert order == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        queue = EventQueue()
        order = []
        for label in "abcde":
            queue.schedule(5, lambda label=label: order.append(label))
        queue.run()
        assert order == list("abcde")

    def test_now_advances_to_event_time(self):
        queue = EventQueue()
        seen = []
        queue.schedule(42, lambda: seen.append(queue.now))
        queue.run()
        assert seen == [42]
        assert queue.now == 42

    def test_schedule_at_absolute_time(self):
        queue = EventQueue()
        seen = []
        queue.schedule_at(100, lambda: seen.append(queue.now))
        queue.run()
        assert seen == [100]

    def test_negative_delay_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.schedule(-1, lambda: None)

    def test_schedule_in_past_rejected(self):
        queue = EventQueue()
        queue.schedule(10, lambda: None)
        queue.run()
        with pytest.raises(ValueError):
            queue.schedule_at(5, lambda: None)

    def test_fractional_delay_rounds_to_cycles(self):
        queue = EventQueue()
        seen = []
        queue.schedule(1.4, lambda: seen.append(queue.now))
        queue.run()
        assert seen == [1]


class TestExecution:
    def test_step_returns_false_when_empty(self):
        assert EventQueue().step() is False

    def test_events_scheduled_during_execution_run(self):
        queue = EventQueue()
        order = []

        def first():
            order.append("first")
            queue.schedule(5, lambda: order.append("second"))

        queue.schedule(1, first)
        queue.run()
        assert order == ["first", "second"]
        assert queue.now == 6

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        fired = []
        event = queue.schedule_cancellable(10, lambda: fired.append("cancelled"))
        queue.schedule(20, lambda: fired.append("kept"))
        event.cancel()
        queue.run()
        assert fired == ["kept"]

    def test_run_until_leaves_later_events_pending(self):
        queue = EventQueue()
        fired = []
        queue.schedule(5, lambda: fired.append(5))
        queue.schedule(50, lambda: fired.append(50))
        queue.run(until=10)
        assert fired == [5]
        assert queue.pending == 1
        queue.run()
        assert fired == [5, 50]

    def test_max_events_bounds_execution(self):
        queue = EventQueue()

        def reschedule():
            queue.schedule(1, reschedule)

        queue.schedule(1, reschedule)
        queue.run(max_events=25)
        assert queue.executed == 25

    def test_executed_counts_only_real_events(self):
        queue = EventQueue()
        event = queue.schedule_cancellable(1, lambda: None)
        event.cancel()
        queue.schedule(2, lambda: None)
        queue.run()
        assert queue.executed == 1

    def test_cancel_is_idempotent(self):
        queue = EventQueue()
        fired = []
        event = queue.schedule_cancellable(1, lambda: fired.append("a"))
        event.cancel()
        event.cancel()
        queue.schedule(2, lambda: fired.append("b"))
        queue.run()
        assert fired == ["b"]
        assert queue.executed == 1

    def test_cancel_after_fire_does_not_skip_later_events(self):
        # cancelling an already-fired event must not poison the seq set
        queue = EventQueue()
        fired = []
        event = queue.schedule_cancellable(1, lambda: fired.append("a"))
        queue.run()
        event.cancel()
        queue.schedule(1, lambda: fired.append("b"))
        queue.run()
        assert fired == ["a", "b"]
        # the side set must not leak stale sequence numbers either
        assert queue._cancelled == set()

    def test_drained_queue_clears_cancelled_side_set(self):
        queue = EventQueue()
        fired = []
        # same-cycle cancel-after-fire: the guard in cancel() cannot tell,
        # so the drain path must clean the stale entry up
        event = queue.schedule_cancellable(0, lambda: fired.append("a"))
        queue.run()
        event.cancel()
        assert fired == ["a"]
        queue.schedule(1, lambda: fired.append("b"))
        queue.run()
        assert fired == ["a", "b"]
        assert queue._cancelled == set()

    def test_cancellable_events_keep_tie_order(self):
        queue = EventQueue()
        order = []
        queue.schedule(5, lambda: order.append("plain"))
        queue.schedule_cancellable(5, lambda: order.append("cancellable"))
        queue.run()
        assert order == ["plain", "cancellable"]

    def test_step_skips_cancelled_events(self):
        queue = EventQueue()
        fired = []
        event = queue.schedule_cancellable(1, lambda: fired.append("a"))
        queue.schedule(2, lambda: fired.append("b"))
        event.cancel()
        assert queue.step() is True
        assert fired == ["b"]
        assert queue.step() is False


class TestFastPath:
    def test_schedule_is_fire_and_forget(self):
        queue = EventQueue()
        assert queue.schedule(1, lambda: None) is None
        assert queue.schedule_at(5, lambda: None) is None

    def test_integer_delays_skip_rounding(self):
        queue = EventQueue()
        seen = []
        queue.schedule(3, lambda: seen.append(queue.now))
        queue.run()
        assert seen == [3]

    def test_float_schedule_at_coerces_to_int_cycles(self):
        queue = EventQueue()
        seen = []
        queue.schedule_at(7.0, lambda: seen.append(queue.now))
        queue.run()
        assert seen == [7] and seen[0].__class__ is int

    def test_bool_delay_is_not_mistaken_for_int_fast_path(self):
        # bool subclasses int; it must still schedule correctly
        queue = EventQueue()
        seen = []
        queue.schedule(True, lambda: seen.append(queue.now))
        queue.run()
        assert seen == [1]
