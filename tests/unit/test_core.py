"""Tests for the core policy machinery: policies, DBI, predictor, engine,
classification and the advisor."""

from __future__ import annotations

import pytest

from repro.core.advisor import PolicyAdvisor, WorkloadProfile, static_best_policy, static_worst_policy
from repro.core.allocation_bypass import AllocationBypassSpec
from repro.core.classification import PAPER_CATEGORIES, WorkloadCategory, classify
from repro.core.dirty_block_index import DirtyBlockIndex
from repro.core.policies import (
    ALL_POLICIES,
    CACHE_R,
    CACHE_RW,
    CACHE_RW_AB,
    CACHE_RW_CR,
    CACHE_RW_PCBY,
    STATIC_POLICIES,
    UNCACHED,
    policy_by_name,
)
from repro.core.policy_engine import PolicyEngine
from repro.core.reuse_predictor import PredictorConfig, ReusePredictor
from repro.memory.request import AccessType, MemoryRequest


class TestPolicySpecs:
    def test_uncached_bypasses_everything(self):
        assert not UNCACHED.caches_loads
        assert not UNCACHED.caches_stores

    def test_cache_r_caches_loads_only(self):
        assert CACHE_R.cache_loads_l1 and CACHE_R.cache_loads_l2
        assert not CACHE_R.cache_stores_l2

    def test_cache_rw_adds_store_combining(self):
        assert CACHE_RW.cache_loads_l1 and CACHE_RW.cache_stores_l2

    def test_static_policies_have_no_optimizations(self):
        for policy in STATIC_POLICIES:
            assert policy.is_static

    def test_optimizations_stack_cumulatively(self):
        assert CACHE_RW_AB.allocation_bypass and not CACHE_RW_AB.cache_rinsing
        assert CACHE_RW_CR.allocation_bypass and CACHE_RW_CR.cache_rinsing
        assert CACHE_RW_PCBY.allocation_bypass and CACHE_RW_PCBY.cache_rinsing
        assert CACHE_RW_PCBY.pc_bypass

    def test_policy_by_name_case_insensitive(self):
        assert policy_by_name("cacherw-pcby") is CACHE_RW_PCBY
        assert policy_by_name("UNCACHED") is UNCACHED

    def test_policy_by_name_unknown_raises(self):
        with pytest.raises(KeyError):
            policy_by_name("WriteBackEverything")

    def test_with_optimizations_returns_new_spec(self):
        derived = CACHE_RW.with_optimizations(allocation_bypass=True, name="X")
        assert derived.allocation_bypass and derived.name == "X"
        assert not CACHE_RW.allocation_bypass  # original untouched

    def test_all_policies_have_unique_names(self):
        names = [p.name for p in ALL_POLICIES]
        assert len(names) == len(set(names))


class TestAllocationBypassSpec:
    def test_paper_default_is_immediate_conversion(self):
        spec = AllocationBypassSpec.paper_default()
        assert spec.enabled and spec.retry_budget == 0

    def test_disabled_spec(self):
        spec = AllocationBypassSpec.disabled()
        assert not spec.enabled and not spec.apply_to_loads

    def test_negative_retry_budget_rejected(self):
        with pytest.raises(ValueError):
            AllocationBypassSpec(retry_budget=-1)


class TestDirtyBlockIndex:
    def test_mark_and_query(self):
        dbi = DirtyBlockIndex(row_of=lambda a: a // 1024)
        dbi.mark_dirty(0)
        dbi.mark_dirty(64)
        dbi.mark_dirty(2048)
        assert dbi.is_dirty(0) and dbi.is_dirty(64)
        assert dbi.dirty_lines_in_row(0) == [0, 64]
        assert dbi.dirty_lines_in_row(2) == [2048]
        assert dbi.dirty_count() == 3

    def test_clear_is_idempotent(self):
        dbi = DirtyBlockIndex(row_of=lambda a: 0)
        dbi.mark_dirty(0)
        dbi.clear(0)
        dbi.clear(0)
        assert not dbi.is_dirty(0)
        assert len(dbi) == 0

    def test_mark_same_line_twice_counts_once(self):
        dbi = DirtyBlockIndex(row_of=lambda a: 0)
        dbi.mark_dirty(64)
        dbi.mark_dirty(64)
        assert dbi.dirty_count() == 1

    def test_rows_by_dirtiness_orders_descending(self):
        dbi = DirtyBlockIndex(row_of=lambda a: a // 1024)
        for address in (0, 64, 128, 1024):
            dbi.mark_dirty(address)
        ranking = dbi.rows_by_dirtiness()
        assert ranking[0] == (0, 3)
        assert ranking[1] == (1, 1)

    def test_capacity_overflow_evicts_oldest_row(self):
        overflowed = []
        dbi = DirtyBlockIndex(
            row_of=lambda a: a // 1024, max_rows=2, on_overflow=overflowed.append
        )
        dbi.mark_dirty(0)       # row 0
        dbi.mark_dirty(1024)    # row 1
        dbi.mark_dirty(2048)    # row 2 -> evicts row 0
        assert dbi.overflows == 1
        assert overflowed == [[0]]
        assert not dbi.is_dirty(0)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            DirtyBlockIndex(row_of=lambda a: 0, max_rows=0)


class TestReusePredictor:
    def test_default_predicts_bypass_for_unknown_pc(self):
        predictor = ReusePredictor()
        assert predictor.should_bypass(0x1234)

    def test_reuse_training_promotes_pc_to_cached(self):
        predictor = ReusePredictor(PredictorConfig(bypass_threshold=2, initial_value=1))
        pc = 0x400
        assert predictor.should_bypass(pc)
        predictor.train_reuse(pc)
        assert not predictor.should_bypass(pc)

    def test_dead_eviction_training_demotes_pc(self):
        predictor = ReusePredictor(PredictorConfig(bypass_threshold=2, initial_value=3))
        pc = 0x800
        assert not predictor.should_bypass(pc)
        predictor.train_eviction(pc, reused=False)
        predictor.train_eviction(pc, reused=False)
        assert predictor.should_bypass(pc)

    def test_counters_saturate_at_bounds(self):
        config = PredictorConfig(counter_bits=2, bypass_threshold=2, initial_value=0)
        predictor = ReusePredictor(config)
        pc = 0x10
        for _ in range(20):
            predictor.train_reuse(pc)
        assert predictor.counter(pc) == config.max_value
        for _ in range(20):
            predictor.train_eviction(pc, reused=False)
        assert predictor.counter(pc) == 0

    def test_bypass_fraction_tracks_predictions(self):
        predictor = ReusePredictor(PredictorConfig(initial_value=0))
        for _ in range(10):
            predictor.should_bypass(0x100)
        assert predictor.bypass_fraction() == pytest.approx(1.0)

    def test_distinct_pcs_use_distinct_counters(self):
        predictor = ReusePredictor(PredictorConfig(initial_value=1, bypass_threshold=2))
        predictor.train_reuse(0x1000)
        assert not predictor.should_bypass(0x1000)
        assert predictor.should_bypass(0x2000)

    def test_invalid_table_size_rejected(self):
        with pytest.raises(ValueError):
            PredictorConfig(table_entries=100)

    def test_threshold_must_fit_counter(self):
        with pytest.raises(ValueError):
            PredictorConfig(counter_bits=2, bypass_threshold=9)


class TestPolicyEngine:
    def _load(self) -> MemoryRequest:
        return MemoryRequest(access=AccessType.LOAD, address=0, pc=0x1)

    def _store(self) -> MemoryRequest:
        return MemoryRequest(access=AccessType.STORE, address=0, pc=0x2)

    def test_uncached_marks_everything_bypass(self):
        engine = PolicyEngine(UNCACHED)
        load = engine.annotate(self._load())
        store = engine.annotate(self._store())
        assert load.bypass_l1 and load.bypass_l2
        assert store.bypass_l1 and store.bypass_l2

    def test_cache_r_caches_loads_but_not_stores(self):
        engine = PolicyEngine(CACHE_R)
        load = engine.annotate(self._load())
        store = engine.annotate(self._store())
        assert not load.bypass_l1 and not load.bypass_l2
        assert store.bypass_l1 and store.bypass_l2

    def test_cache_rw_sends_stores_to_l2(self):
        engine = PolicyEngine(CACHE_RW)
        store = engine.annotate(self._store())
        assert store.bypass_l1 and not store.bypass_l2

    def test_stores_always_bypass_l1(self):
        for policy in ALL_POLICIES:
            engine = PolicyEngine(policy, row_of=lambda a: 0)
            assert engine.annotate(self._store()).bypass_l1

    def test_optimization_components_created_on_demand(self):
        plain = PolicyEngine(CACHE_RW)
        assert plain.reuse_predictor is None and plain.dirty_block_index is None
        optimized = PolicyEngine(CACHE_RW_PCBY, row_of=lambda a: 0)
        assert optimized.reuse_predictor is not None
        assert optimized.dirty_block_index is not None
        assert optimized.allocation_bypass

    def test_rinsing_requires_row_mapping(self):
        with pytest.raises(ValueError):
            PolicyEngine(CACHE_RW_CR)

    def test_describe_reports_policy_name(self):
        engine = PolicyEngine(CACHE_R)
        assert engine.describe()["policy"] == "CacheR"


class TestClassification:
    def test_insensitive_when_within_band(self):
        result = classify({"Uncached": 100.0, "CacheR": 98.0, "CacheRW": 103.0})
        assert result is WorkloadCategory.MEMORY_INSENSITIVE

    def test_reuse_sensitive_when_caching_helps(self):
        result = classify({"Uncached": 100.0, "CacheR": 80.0, "CacheRW": 75.0})
        assert result is WorkloadCategory.REUSE_SENSITIVE

    def test_throughput_sensitive_when_caching_hurts(self):
        result = classify({"Uncached": 100.0, "CacheR": 115.0, "CacheRW": 120.0})
        assert result is WorkloadCategory.THROUGHPUT_SENSITIVE

    def test_mixed_results_count_as_reuse_sensitive(self):
        # the paper classifies by whether *some* caching policy helps
        result = classify({"Uncached": 100.0, "CacheR": 120.0, "CacheRW": 70.0})
        assert result is WorkloadCategory.REUSE_SENSITIVE

    def test_custom_band(self):
        times = {"Uncached": 100.0, "CacheR": 93.0, "CacheRW": 100.0}
        assert classify(times, band=0.10) is WorkloadCategory.MEMORY_INSENSITIVE
        assert classify(times, band=0.02) is WorkloadCategory.REUSE_SENSITIVE

    def test_missing_baseline_raises(self):
        with pytest.raises(KeyError):
            classify({"CacheR": 1.0})

    def test_paper_categories_cover_all_registered_workloads(self):
        # the paper's 17 plus the beyond-paper MHA entry
        assert len(PAPER_CATEGORIES) == 18
        assert PAPER_CATEGORIES["FwAct"] is WorkloadCategory.THROUGHPUT_SENSITIVE
        assert PAPER_CATEGORIES["SGEMM"] is WorkloadCategory.MEMORY_INSENSITIVE
        assert PAPER_CATEGORIES["FwFc"] is WorkloadCategory.REUSE_SENSITIVE
        assert PAPER_CATEGORIES["MHA"] is WorkloadCategory.REUSE_SENSITIVE


class TestAdvisor:
    def test_static_best_and_worst(self):
        times = {"Uncached": 10.0, "CacheR": 8.0, "CacheRW": 12.0}
        assert static_best_policy(times) == "CacheR"
        assert static_worst_policy(times) == "CacheRW"

    def test_empty_results_rejected(self):
        with pytest.raises(ValueError):
            static_best_policy({})

    def test_compute_bound_profile_gets_cache_r(self):
        advisor = PolicyAdvisor()
        profile = WorkloadProfile(20.0, 0.7, 0.0, 1 << 20)
        assert advisor.recommend(profile) is CACHE_R
        assert advisor.expected_category(profile) is WorkloadCategory.MEMORY_INSENSITIVE

    def test_streaming_profile_gets_uncached(self):
        advisor = PolicyAdvisor()
        profile = WorkloadProfile(0.3, 0.02, 0.0, 1 << 30)
        assert advisor.recommend(profile) is UNCACHED
        assert advisor.expected_category(profile) is WorkloadCategory.THROUGHPUT_SENSITIVE

    def test_write_coalescing_profile_gets_cache_rw(self):
        advisor = PolicyAdvisor()
        profile = WorkloadProfile(1.0, 0.5, 0.5, 1 << 22)
        assert advisor.recommend(profile) is CACHE_RW

    def test_read_reuse_profile_gets_cache_r(self):
        advisor = PolicyAdvisor()
        profile = WorkloadProfile(1.0, 0.5, 0.05, 1 << 22)
        assert advisor.recommend(profile) is CACHE_R

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile(1.0, 1.5, 0.0, 0)
        with pytest.raises(ValueError):
            WorkloadProfile(1.0, 0.5, -0.1, 0)
        with pytest.raises(ValueError):
            WorkloadProfile(1.0, 0.5, 0.1, -5)
