"""Property-based tests (hypothesis) for the core data structures.

These check structural invariants over randomly generated inputs: the event
queue's ordering guarantee, coalescer correctness, address-mapping
consistency, dirty-block-index bookkeeping, predictor counter bounds,
tensor allocation safety and cache/backend consistency under arbitrary
access sequences.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig, DramConfig
from repro.core.dirty_block_index import DirtyBlockIndex
from repro.core.reuse_predictor import PredictorConfig, ReusePredictor
from repro.engine import Simulator
from repro.engine.event_queue import EventQueue
from repro.gpu.coalescer import coalesce_addresses
from repro.memory.address_mapping import AddressMapping
from repro.memory.cache import Cache
from repro.memory.replacement import LruReplacement
from repro.memory.request import AccessType, MemoryRequest
from repro.stats import StatsCollector
from repro.workloads.tensor import AddressSpace

# keep hypothesis fast and deterministic inside CI-style runs
FAST = settings(max_examples=50, deadline=None)


class TestEventQueueProperties:
    @FAST
    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=200))
    def test_events_always_fire_in_nondecreasing_time_order(self, delays):
        queue = EventQueue()
        fired: list[int] = []
        for delay in delays:
            queue.schedule(delay, lambda: fired.append(queue.now))
        queue.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @FAST
    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=100))
    def test_run_executes_every_scheduled_event_exactly_once(self, delays):
        queue = EventQueue()
        counter = {"n": 0}
        for delay in delays:
            queue.schedule(delay, lambda: counter.__setitem__("n", counter["n"] + 1))
        queue.run()
        assert counter["n"] == len(delays)


class TestCoalescerProperties:
    @FAST
    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=128))
    def test_coalesced_lines_cover_every_address(self, addresses):
        lines = coalesce_addresses(addresses, 64)
        line_set = set(lines)
        assert all(addr - addr % 64 in line_set for addr in addresses)

    @FAST
    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=128))
    def test_coalesced_lines_are_unique_and_aligned(self, addresses):
        lines = coalesce_addresses(addresses, 64)
        assert len(lines) == len(set(lines))
        assert all(line % 64 == 0 for line in lines)
        assert len(lines) <= len(addresses)


class TestAddressMappingProperties:
    @FAST
    @given(st.integers(min_value=0, max_value=1 << 28))
    def test_coordinates_within_bounds_and_row_id_consistent(self, address):
        config = DramConfig(channels=4, banks_per_channel=8, row_bytes=1024)
        mapping = AddressMapping(config, line_bytes=64)
        loc = mapping.locate(address)
        assert 0 <= loc.channel < config.channels
        assert 0 <= loc.bank < config.banks_per_channel
        assert 0 <= loc.column < config.row_bytes // 64
        same_line = address - address % 64
        assert mapping.row_id(address) == mapping.row_id(same_line)

    @FAST
    @given(st.integers(min_value=0, max_value=1 << 22))
    def test_addresses_in_same_row_share_row_id(self, line_index):
        config = DramConfig(channels=2, banks_per_channel=4, row_bytes=512)
        mapping = AddressMapping(config, line_bytes=64)
        address = line_index * 64
        loc = mapping.locate(address)
        peers = [
            other
            for other in range(0, (line_index + 64) * 64, 64)
            if mapping.locate(other).channel == loc.channel
            and mapping.locate(other).bank == loc.bank
            and mapping.locate(other).row == loc.row
        ]
        assert all(mapping.row_id(peer) == mapping.row_id(address) for peer in peers)


class TestDirtyBlockIndexProperties:
    @FAST
    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(min_value=0, max_value=255)),
            min_size=1,
            max_size=300,
        )
    )
    def test_dirty_count_matches_reference_model(self, operations):
        dbi = DirtyBlockIndex(row_of=lambda addr: addr // 1024)
        reference: set[int] = set()
        for mark, line in operations:
            address = line * 64
            if mark:
                dbi.mark_dirty(address)
                reference.add(address)
            else:
                dbi.clear(address)
                reference.discard(address)
        assert dbi.dirty_count() == len(reference)
        for address in reference:
            assert dbi.is_dirty(address)
        collected = {
            address for row in dbi.rows() for address in dbi.dirty_lines_in_row(row)
        }
        assert collected == reference


class TestPredictorProperties:
    @FAST
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1 << 16),
                st.sampled_from(["reuse", "dead", "predict"]),
            ),
            min_size=1,
            max_size=500,
        )
    )
    def test_counters_stay_within_bounds(self, events):
        config = PredictorConfig(table_entries=64, counter_bits=3)
        predictor = ReusePredictor(config)
        for pc, kind in events:
            if kind == "reuse":
                predictor.train_reuse(pc)
            elif kind == "dead":
                predictor.train_eviction(pc, reused=False)
            else:
                predictor.should_bypass(pc)
        assert all(0 <= value <= config.max_value for value in predictor.table_snapshot())
        assert 0.0 <= predictor.bypass_fraction() <= 1.0


class TestTensorProperties:
    @FAST
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=10_000),
                st.sampled_from([2, 4, 8]),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_allocations_never_overlap(self, shapes):
        space = AddressSpace(alignment=256)
        for index, (elements, width) in enumerate(shapes):
            space.allocate(f"t{index}", elements, element_bytes=width)
        assert space.overlapping() == []
        assert space.total_bytes() == sum(n * w for n, w in shapes)


class TestReplacementProperties:
    @FAST
    @given(
        st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=100),
        st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=8),
    )
    def test_lru_victim_always_a_candidate(self, touches, candidate_pool):
        lru = LruReplacement(num_sets=1, assoc=8)
        for cycle, way in enumerate(touches):
            lru.on_access(0, way, cycle)
        candidates = sorted(set(candidate_pool))
        assert lru.select_victim(0, candidates) in candidates


class TestCacheProperties:
    @FAST
    @given(
        st.lists(
            st.tuples(
                st.booleans(),
                st.integers(min_value=0, max_value=63),
            ),
            min_size=1,
            max_size=120,
        )
    )
    def test_every_request_completes_and_traffic_is_bounded(self, accesses):
        """Whatever the access sequence, every request completes exactly once
        and the backend never sees more loads than there are load requests."""
        sim = Simulator()
        stats = StatsCollector()
        backend_loads = []

        def backend(request, on_done):
            if request.is_load:
                backend_loads.append(request.address)
            sim.schedule(40, lambda: on_done(request))

        cache = Cache(
            name="prop",
            config=CacheConfig(size_bytes=1024, line_bytes=64, assoc=2, hit_latency=5, mshrs=3),
            sim=sim,
            stats=stats,
            downstream=backend,
            stat_prefix="l1",
        )
        completed = []
        issued_loads = 0
        for is_store, line in accesses:
            address = line * 64
            access = AccessType.STORE if is_store else AccessType.LOAD
            request = MemoryRequest(access=access, address=address, pc=0x10)
            if is_store:
                request.bypass_l1 = True  # stores bypass the L1 in every policy
            else:
                issued_loads += 1
            cache.access(request, lambda r: completed.append(r.req_id))
        sim.run()
        assert len(completed) == len(accesses)
        assert len(set(completed)) == len(completed)
        assert len(backend_loads) <= issued_loads


# ----------------------------------------------------------------------
# multi-tenant serving streams
# ----------------------------------------------------------------------

from repro.config import scaled_config
from repro.core.policies import CACHE_RW
from repro.core.policy_engine import PolicyEngine
from repro.gpu.gpu import Gpu
from repro.memory.hierarchy import MemoryHierarchy
from repro.streams import StreamConfig
from repro.streams.address_space import isolate_traces
from repro.workloads.trace import (
    ComputeInstr,
    KernelTrace,
    MemInstr,
    WavefrontProgram,
    WorkloadTrace,
)

_SERVING_CONFIG = scaled_config(2)

#: one randomly shaped tenant: (kernel shapes, launch_cycle) where each
#: kernel is a list of per-wavefront (line_count, has_store) specs
_stream_shape = st.tuples(
    st.lists(
        st.lists(
            st.tuples(st.integers(min_value=1, max_value=6), st.booleans()),
            min_size=1,
            max_size=3,
        ),
        min_size=1,
        max_size=2,
    ),
    st.integers(min_value=0, max_value=2_000),
)


def _build_trace(index: int, kernels) -> WorkloadTrace:
    trace = WorkloadTrace(name=f"tenant{index}")
    for k, wavefronts in enumerate(kernels):
        kernel = KernelTrace(name=f"k{k}")
        for w, (line_count, has_store) in enumerate(wavefronts):
            program = WavefrontProgram(workgroup_id=w)
            addresses = tuple(64 * (w * 64 + i) for i in range(line_count))
            program.append(MemInstr(access=AccessType.LOAD, line_addresses=addresses, pc=0x40))
            if has_store:
                program.append(
                    MemInstr(access=AccessType.STORE, line_addresses=addresses[:1], pc=0x44)
                )
            program.append(ComputeInstr(vector_ops=2))
            kernel.add_wavefront(program)
        trace.add_kernel(kernel)
    return trace


def _run_serving(shapes, cu_share: str):
    """Assemble a 2-CU system and run one synthetic stream per shape."""
    sim = Simulator()
    stats = StatsCollector()
    mapping = AddressMapping(_SERVING_CONFIG.dram, line_bytes=_SERVING_CONFIG.l2.line_bytes)
    engine = PolicyEngine(CACHE_RW, row_of=mapping.row_id)
    hierarchy = MemoryHierarchy(_SERVING_CONFIG, sim, stats, engine)
    gpu = Gpu(_SERVING_CONFIG, sim, stats, hierarchy)
    gpu.dispatch_log = []
    traces = [_build_trace(i, kernels) for i, (kernels, _launch) in enumerate(shapes)]
    configs = [
        StreamConfig(
            workload=trace.name, launch_cycle=launch, cu_share=cu_share
        )
        for trace, (_kernels, launch) in zip(traces, shapes)
    ]
    hierarchy.enable_stream_accounting(len(configs))
    traces = isolate_traces(traces, _SERVING_CONFIG.l2.line_bytes)
    finished = []
    gpu.run_streams(traces, configs, on_complete=lambda: finished.append(sim.now))
    sim.run()
    assert finished, "serving run deadlocked"
    return gpu, stats, traces


class TestServingStreamProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        shapes=st.lists(_stream_shape, min_size=1, max_size=2),
        cu_share=st.sampled_from(["shared", "partitioned"]),
    )
    def test_per_stream_counters_sum_to_global_totals(self, shapes, cu_share):
        gpu, stats, traces = _run_serving(shapes, cu_share)
        num_streams = len(shapes)
        assert (
            sum(stats.get(f"stream{i}.mem_requests") for i in range(num_streams))
            == stats.get("gpu.mem_requests")
        )
        assert (
            sum(stats.get(f"stream{i}.kernels_completed") for i in range(num_streams))
            == stats.get("gpu.kernels_completed")
        )
        for index, trace in enumerate(traces):
            assert stats.get(f"stream{index}.kernels_completed") == trace.num_kernels
            assert stats.get(f"stream{index}.mem_requests") == trace.line_requests
            launch = stats.get(f"stream{index}.launch_cycle")
            finish = stats.get(f"stream{index}.finish_cycle")
            assert finish > launch
            assert stats.get(f"stream{index}.cycles") == finish - launch

    @settings(max_examples=25, deadline=None)
    @given(
        shapes=st.lists(_stream_shape, min_size=1, max_size=2),
        cu_share=st.sampled_from(["shared", "partitioned"]),
    )
    def test_every_wavefront_runs_on_an_allowed_cu(self, shapes, cu_share):
        gpu, stats, traces = _run_serving(shapes, cu_share)
        total_wavefronts = sum(
            kernel.num_wavefronts for trace in traces for kernel in trace.kernels
        )
        log = gpu.dispatch_log
        # every wavefront dispatched exactly once
        assert len(log) == total_wavefronts
        assert len({wavefront_id for _s, _c, wavefront_id in log}) == total_wavefronts
        for stream_id, cu_id, _wavefront_id in log:
            assert 0 <= cu_id < len(gpu.cus)
            ranges = gpu.cu_partition_of(stream_id)
            if ranges is not None:  # partitioned mode with >= 2 streams
                assert any(
                    base <= cu_id < base + count for base, count in ranges
                ), f"stream {stream_id} ran on CU {cu_id} outside {ranges}"
        if cu_share == "partitioned" and len(shapes) > 1:
            assert all(gpu.cu_partition_of(i) is not None for i in range(len(shapes)))


from repro.faults import FAULT_KINDS, FaultPlan, generate_fault_plan


class TestFaultPlanProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        num_devices=st.integers(min_value=1, max_value=4),
        num_streams=st.integers(min_value=0, max_value=4),
        events_per_kind=st.integers(min_value=0, max_value=3),
    )
    def test_same_seed_yields_identical_plan(
        self, seed, num_devices, num_streams, events_per_kind
    ):
        """Generation is the only randomness: same seed, same schedule."""
        first = generate_fault_plan(
            seed,
            num_devices=num_devices,
            num_streams=num_streams,
            events_per_kind=events_per_kind,
        )
        second = generate_fault_plan(
            seed,
            num_devices=num_devices,
            num_streams=num_streams,
            events_per_kind=events_per_kind,
        )
        assert first.events == second.events
        assert first.describe() == second.describe()
        assert first.fingerprint() == second.fingerprint()

    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        num_devices=st.integers(min_value=1, max_value=4),
        num_streams=st.integers(min_value=0, max_value=4),
    )
    def test_generated_plan_fits_the_system_it_was_made_for(
        self, seed, num_devices, num_streams
    ):
        """A generated plan never demands more than it was told exists."""
        plan = generate_fault_plan(
            seed, num_devices=num_devices, num_streams=num_streams
        )
        assert plan.requires_devices() <= num_devices
        assert plan.requires_streams() <= num_streams
        for event in plan.events:
            assert event.kind in FAULT_KINDS
            assert 0 <= event.cycle < 40_000
            if event.kind == "device_fail":
                assert 1 <= event.target < num_devices, "device 0 must survive"

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_events_are_canonically_sorted(self, seed):
        plan = generate_fault_plan(seed, num_devices=3, num_streams=3)
        keys = [(e.cycle, e.kind, e.target, e.duration) for e in plan.events]
        assert keys == sorted(keys)

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_display_name_does_not_split_fingerprints(self, seed):
        """Renaming a plan must not re-key its store entries."""
        plan = generate_fault_plan(seed, name="alpha")
        renamed = FaultPlan(events=plan.events, name="omega", description="x")
        assert plan.fingerprint() == renamed.fingerprint()
