"""The device-scaling figure: cache policies across 1/2/4-device systems.

The acceptance measurement of the topology subsystem: the static policies
across 1/2/4-device NUMA systems on the fabric-sensitive workload subset
(GEMMs, an RNN, and MHA).  Strong scaling -- a fixed workload is split
across N devices, each adding CUs, an L2 slice and a DRAM partition -- so
the headroom between the measured geomean speedup and the ideal N is what
the fabric latency, fabric bandwidth and remote-traffic fraction cost.

Like every figure bench this runs through the shared session runner:
topology cells persist in the same store under fingerprints that include
the :class:`~repro.topology.config.TopologyConfig`, so a warm harness
repeat simulates nothing.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.policies import STATIC_POLICIES
from repro.experiments import figure_scaling, render_series_table, scaling_summary
from repro.experiments.scaling import (
    SCALING_DEVICES,
    SCALING_WORKLOADS,
    scaling_artifact,
    scaling_series,
)

from benchmarks.conftest import run_once

#: figure data lands next to BENCH_core.json for the CI artifact upload
SCALING_PATH = Path(__file__).resolve().parents[1] / "scaling_figure.json"


def test_figure_scaling(benchmark, bench_runner):
    data = run_once(
        benchmark,
        figure_scaling,
        bench_runner,
        devices=SCALING_DEVICES,
        policies=STATIC_POLICIES,
        workload_names=SCALING_WORKLOADS,
    )
    summary = scaling_summary(data)
    print()
    print(render_series_table(
        "Device scaling: speedup over the same policy at 1 device",
        scaling_series(data, "speedup"),
    ))
    print(render_series_table(
        "Device scaling: remote traffic fraction",
        scaling_series(data, "remote_fraction"),
    ))
    print(render_series_table(
        "Device scaling summary (geomean speedup / mean remote fraction)", summary
    ))
    SCALING_PATH.write_text(
        json.dumps(
            scaling_artifact(
                data, summary, devices=SCALING_DEVICES, workload_names=SCALING_WORKLOADS
            ),
            indent=1,
            sort_keys=True,
        )
        + "\n"
    )

    for workload, series in data.items():
        for policy in STATIC_POLICIES:
            # the 1-device cells anchor the normalization
            assert series[f"{policy.name}@1dev"]["speedup"] == 1.0
            assert series[f"{policy.name}@1dev"]["remote_fraction"] == 0.0
            for count in SCALING_DEVICES[1:]:
                cell = series[f"{policy.name}@{count}dev"]
                # interleaved partitions must produce cross-device traffic...
                assert cell["remote_fraction"] > 0.0, (
                    f"{workload} {policy.name}@{count}dev saw no remote traffic"
                )
                # ...bounded by the uniform-interleave expectation
                assert cell["remote_fraction"] <= (count - 1) / count + 0.05
    # splitting the work across more devices must help somewhere: the
    # geomean speedup of the best series at the top device count clears 1
    top = SCALING_DEVICES[-1]
    best = max(
        summary[f"{policy.name}@{top}dev"]["speedup_geomean"]
        for policy in STATIC_POLICIES
    )
    assert best > 1.0, f"no policy scaled past 1.0x at {top} devices: {best:.3f}"
