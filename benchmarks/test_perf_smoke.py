"""Core events/sec smoke benchmarks with a statistical regression sentinel.

Runs one fixed, deterministic reference simulation (the CM composed model
at scale 1.0 on the 4-CU system under CacheRW) through
:func:`repro.obs.bench.measure_core_throughput` -- a median-of-N
measurement (``REPRO_BENCH_SAMPLES``, default 3) instead of the old
single-sample/best-of-2, so one scheduler hiccup can no longer masquerade
as a regression or hide one.  A second smoke replays the same workload
split across two devices through the multi-device topology path.

Two regression gates guard the core number, both evaluated by
:func:`repro.stats.regression.check_regression`:

* **committed flat gate** -- the *fastest* repetition must stay within
  ``REPRO_BENCH_MAX_REGRESSION`` (default 25%) of the committed
  reference-container baseline in ``BENCH_core.json``.  The run is
  deterministic, so the fastest sample measures the code and slower ones
  measure host interference -- judging the best keeps a loaded tier-1
  host from flaking the gate.  That file is read-only from this test's
  point of view; on hardware unlike the reference container set
  ``REPRO_BENCH_MAX_REGRESSION=0`` to disable the gate, or commit a
  re-measured baseline.
* **robust history gate** -- every run appends its *median* measurement
  to the
  gitignored ``BENCH_history.jsonl`` (``REPRO_BENCH_HISTORY`` overrides
  the path; CI uploads it as the trajectory artifact).  Once at least 5
  comparable samples have accumulated, the measurement must stay above
  ``median - k * 1.4826 * MAD`` of the history (``k`` =
  ``REPRO_BENCH_MAD_FACTOR``, default 4.0) -- a gate that tightens itself
  to this machine's real noise floor instead of a guessed percentage,
  and that a single outlier sample cannot corrupt (median and MAD both
  have a 50% breakdown point).  History recorded under a different event
  count (i.e. an older model) is ignored automatically, so a model
  change starts a fresh history rather than comparing unlike runs.

The per-run ``BENCH_core_run.json`` / ``BENCH_topology_run.json`` records
are still written (CI uploads them), and the opt-in
``REPRO_BENCH_MIN_SPEEDUP`` gate versus the pre-overhaul PR-2 baseline is
preserved.  The reference run must stay fixed; if it has to change (e.g.
a model change alters the event count), re-measure the committed baseline
in the same commit -- the history gate re-arms itself.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.config import scaled_config
from repro.core.policies import CACHE_RW
from repro.obs.bench import (
    EFFECTIVE_BENCHMARK,
    REFERENCE_CUS,
    REFERENCE_SCALE,
    REFERENCE_WORKLOAD,
    append_history,
    committed_baseline,
    default_history_path,
    effective_reference,
    evaluate_measurement,
    load_history,
    measure_core_throughput,
    measure_effective_throughput,
)
from repro.session import SimulationSession
from repro.topology import TopologyConfig
from repro.workloads.registry import get_workload

#: pre-overhaul core throughput on the reference run (events/sec),
#: median of 3 runs on the single-core reference container (2026-07-28)
BASELINE_EVENTS_PER_SEC = 131_000

#: timed repetitions per measurement; the median is the number judged
SAMPLES = max(1, int(os.environ.get("REPRO_BENCH_SAMPLES", "3")))

#: opt-in speedup gate.  The baseline is an absolute number measured on
#: one reference container, so a hard default gate would fail tier-1 on
#: any slower machine with zero code regression; by default the benchmark
#: only records the ratio.  On hardware comparable to the reference
#: container, set REPRO_BENCH_MIN_SPEEDUP=2 to enforce the PR-2 target.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "0"))

#: unconditional sanity floor: an order of magnitude below even the
#: pre-overhaul core, so it passes on any plausible machine but catches a
#: catastrophic regression (e.g. an accidental O(ways) scan reintroduced)
MIN_EVENTS_PER_SEC = 20_000

#: allowed slowdown versus the committed regression baseline (0 disables)
MAX_REGRESSION = float(os.environ.get("REPRO_BENCH_MAX_REGRESSION", "0.25"))

#: robust-floor width: fail below history median - K * 1.4826 * MAD
MAD_FACTOR = float(os.environ.get("REPRO_BENCH_MAD_FACTOR", "4.0"))

#: history samples needed before the MAD gate arms
MIN_HISTORY = 5

#: committed reference-container baseline (never written by this test)
BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_core.json"
#: per-run measurement record (gitignored; CI uploads it as an artifact)
BENCH_RUN_PATH = Path(__file__).resolve().parents[1] / "BENCH_core_run.json"
#: per-run record of the multi-device smoke (gitignored, uploaded like the
#: core record); its committed baseline lives under the "topology" key of
#: BENCH_core.json
BENCH_TOPOLOGY_RUN_PATH = (
    Path(__file__).resolve().parents[1] / "BENCH_topology_run.json"
)

#: the multi-device reference run: the same CM workload split across two
#: 2-CU devices with the default (chiplet-ish) fabric.  Fixed like the
#: core reference; re-measure the committed baseline if it must change.
TOPOLOGY_DEVICES = 2
TOPOLOGY_CUS_PER_DEVICE = 2

#: per-run record of the accelerated (sampled + sharded) smoke; its
#: committed baseline lives under the "effective" key of BENCH_core.json
BENCH_EFFECTIVE_RUN_PATH = (
    Path(__file__).resolve().parents[1] / "BENCH_effective_run.json"
)

#: unconditional floor for *effective* throughput (represented events per
#: wall second with sampling + sharding on).  The PR-10 target is >= 1M
#: on the reference container; the floor sits below that so a slower
#: tier-1 host doesn't flake, while still catching an acceleration-stack
#: collapse (e.g. sampling silently disabled would land near 100k)
MIN_EFFECTIVE_EVENTS_PER_SEC = 500_000


def _committed_record() -> dict:
    """The committed baseline record, or {} when absent or unparseable."""
    try:
        return json.loads(BENCH_PATH.read_text())
    except (OSError, ValueError):
        return {}


def test_core_events_per_second():
    history_path = default_history_path()
    # the gate judges the new measurement against what came *before* it
    prior_history = load_history(history_path)

    measurement = measure_core_throughput(samples=SAMPLES)
    append_history(history_path, measurement)

    events_per_sec = measurement.events_per_sec
    speedup = events_per_sec / BASELINE_EVENTS_PER_SEC
    # the run is deterministic, so the committed flat gate judges the
    # fastest repetition (machine capability -- a loaded tier-1 host
    # can't flake it), while the history MAD gate judges the median (the
    # typical run, which is what the history records and what its noise
    # floor is calibrated to)
    flat_verdict = evaluate_measurement(
        measurement.best_events_per_sec,
        baseline=committed_baseline(BENCH_PATH) if MAX_REGRESSION > 0 else None,
        max_regression=MAX_REGRESSION,
    )
    history_verdict = evaluate_measurement(
        events_per_sec,
        history=prior_history,
        baseline=None,
        mad_factor=MAD_FACTOR,
        min_history=MIN_HISTORY,
    )
    verdict_ok = flat_verdict.ok and history_verdict.ok
    verdict_reasons = flat_verdict.reasons + history_verdict.reasons

    record = {
        "schema": 2,
        "benchmark": "core_events_per_second",
        "reference": {
            "workload": REFERENCE_WORKLOAD,
            "scale": REFERENCE_SCALE,
            "num_cus": REFERENCE_CUS,
            "policy": CACHE_RW.name,
        },
        "events": measurement.events,
        "cycles": measurement.cycles,
        "samples": measurement.samples,
        "seconds": [round(s, 4) for s in measurement.seconds],
        "median_seconds": round(measurement.median_seconds, 4),
        "events_per_sec": round(events_per_sec),
        "best_events_per_sec": round(measurement.best_events_per_sec),
        "baseline_events_per_sec": BASELINE_EVENTS_PER_SEC,
        "speedup_vs_baseline": round(speedup, 2),
        "verdict": {
            "ok": verdict_ok,
            "reasons": verdict_reasons,
            "flat": flat_verdict.as_dict(),
            "history": history_verdict.as_dict(),
        },
        "history_path": str(history_path),
        "history_samples": len(prior_history),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "argv": sys.argv[:1],
    }
    BENCH_RUN_PATH.write_text(json.dumps(record, indent=1) + "\n")
    print(
        f"\ncore perf smoke: {measurement.events} events, median of "
        f"{measurement.samples} samples = {events_per_sec:,.0f} events/sec "
        f"({speedup:.2f}x baseline), history n={len(prior_history)}, "
        f"recorded to {BENCH_RUN_PATH.name}"
    )

    assert measurement.events > 0 and measurement.cycles > 0
    assert events_per_sec >= MIN_EVENTS_PER_SEC, (
        f"core throughput collapsed: {events_per_sec:,.0f} events/sec is below "
        f"the {MIN_EVENTS_PER_SEC:,} sanity floor; see {BENCH_RUN_PATH}"
    )
    if MIN_SPEEDUP > 0:
        assert speedup >= MIN_SPEEDUP, (
            f"core throughput regressed: {events_per_sec:,.0f} events/sec is only "
            f"{speedup:.2f}x the pre-overhaul baseline of {BASELINE_EVENTS_PER_SEC:,} "
            f"(enforced floor {MIN_SPEEDUP}x); see {BENCH_PATH}"
        )
    assert verdict_ok, (
        "core throughput regressed: " + "; ".join(verdict_reasons) + "; if this "
        "machine is simply slower than the reference container, set "
        "REPRO_BENCH_MAX_REGRESSION=0 or commit a re-measured BENCH_core.json "
        f"(history: {history_path})"
    )


def test_topology_events_per_second():
    """Multi-device smoke: the NUMA wiring must not sink core throughput.

    Same reference workload as the core smoke, split across two devices.
    The multi-device hot path adds one request clone plus interleave
    arithmetic per slice-bound access, so per-event throughput sits close
    to the single-device number; this guard (baseline under the
    ``topology`` key of BENCH_core.json) catches a slice-routing change
    that accidentally turns the fabric into an event storm.  Judged by the
    same committed flat gate as the core smoke (median of SAMPLES reps);
    no history gate -- one robust trajectory is enough, and the topology
    number tracks the core number.
    """
    trace = get_workload(REFERENCE_WORKLOAD, scale=REFERENCE_SCALE).build_trace()
    topology = TopologyConfig(num_devices=TOPOLOGY_DEVICES)

    def session() -> SimulationSession:
        return SimulationSession(
            policy=CACHE_RW,
            config=scaled_config(TOPOLOGY_CUS_PER_DEVICE),
            topology=topology,
        )

    session().run(get_workload(REFERENCE_WORKLOAD, scale=0.1))  # warm-up

    seconds = []
    events = cycles = 0
    for index in range(SAMPLES):
        run = session()
        start = time.perf_counter()
        report = run.run(trace)
        seconds.append(time.perf_counter() - start)
        if index == 0:
            events, cycles = run.sim.queue.executed, report.cycles
        else:
            assert run.sim.queue.executed == events and report.cycles == cycles, (
                "the reference topology run went nondeterministic between samples"
            )
    median_seconds = sorted(seconds)[len(seconds) // 2]
    events_per_sec = events / median_seconds
    best_events_per_sec = events / min(seconds)

    committed = _committed_record().get("topology", {})
    regression_baseline = committed.get("regression_baseline")
    # as with the core smoke, the flat gate judges the fastest repetition
    # so a loaded tier-1 host cannot flake a deterministic run
    verdict = evaluate_measurement(
        best_events_per_sec,
        baseline=regression_baseline if MAX_REGRESSION > 0 else None,
        max_regression=MAX_REGRESSION,
    )

    record = {
        "schema": 2,
        "benchmark": "topology_events_per_second",
        "reference": {
            "workload": REFERENCE_WORKLOAD,
            "scale": REFERENCE_SCALE,
            "num_devices": TOPOLOGY_DEVICES,
            "cus_per_device": TOPOLOGY_CUS_PER_DEVICE,
            "policy": CACHE_RW.name,
        },
        "events": events,
        "cycles": cycles,
        "samples": SAMPLES,
        "seconds": [round(s, 4) for s in seconds],
        "median_seconds": round(median_seconds, 4),
        "events_per_sec": round(events_per_sec),
        "best_events_per_sec": round(best_events_per_sec),
        "verdict": verdict.as_dict(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "argv": sys.argv[:1],
    }
    BENCH_TOPOLOGY_RUN_PATH.write_text(json.dumps(record, indent=1) + "\n")
    print(
        f"\ntopology perf smoke: {events} events, median of {SAMPLES} samples = "
        f"{events_per_sec:,.0f} events/sec on {TOPOLOGY_DEVICES} devices, "
        f"recorded to {BENCH_TOPOLOGY_RUN_PATH.name}"
    )

    assert events > 0 and cycles > 0
    assert events_per_sec >= MIN_EVENTS_PER_SEC, (
        f"multi-device throughput collapsed: {events_per_sec:,.0f} events/sec is "
        f"below the {MIN_EVENTS_PER_SEC:,} sanity floor; see {BENCH_TOPOLOGY_RUN_PATH}"
    )
    assert verdict.ok, (
        "multi-device throughput regressed: " + "; ".join(verdict.reasons)
        + "; if this machine is simply slower than the reference container, set "
        "REPRO_BENCH_MAX_REGRESSION=0 or commit a re-measured baseline"
    )


def test_effective_events_per_second():
    """Accelerated smoke: sampled + sharded *effective* throughput.

    Runs the fixed accelerated reference (four partitioned FwLSTM tenants
    at scale 8 on the 16-CU system, four shard processes, aggressive
    phase sampling) through
    :func:`repro.obs.bench.measure_effective_throughput` and judges
    represented events per wall second -- simulated plus extrapolated --
    with the same two gates as the core smoke: the committed flat gate
    (under the ``effective`` key of BENCH_core.json, judging the fastest
    repetition) and the per-machine robust history gate (judging the
    median, recorded to the shared history file under its own benchmark
    name).  An unconditional 500k floor catches the acceleration stack
    silently collapsing to exact speed regardless of host.
    """
    history_path = default_history_path()
    prior_history = load_history(history_path, benchmark=EFFECTIVE_BENCHMARK)

    measurement = measure_effective_throughput(samples=SAMPLES)
    append_history(history_path, measurement)

    events_per_sec = measurement.events_per_sec
    flat_verdict = evaluate_measurement(
        measurement.best_events_per_sec,
        baseline=(
            committed_baseline(BENCH_PATH, section="effective")
            if MAX_REGRESSION > 0
            else None
        ),
        max_regression=MAX_REGRESSION,
    )
    history_verdict = evaluate_measurement(
        events_per_sec,
        history=prior_history,
        baseline=None,
        mad_factor=MAD_FACTOR,
        min_history=MIN_HISTORY,
    )
    verdict_ok = flat_verdict.ok and history_verdict.ok
    verdict_reasons = flat_verdict.reasons + history_verdict.reasons

    record = {
        "schema": 2,
        "benchmark": EFFECTIVE_BENCHMARK,
        "reference": effective_reference(),
        "events": measurement.events,
        "executed_events": measurement.executed_events,
        "cycles": measurement.cycles,
        "samples": measurement.samples,
        "seconds": [round(s, 4) for s in measurement.seconds],
        "median_seconds": round(measurement.median_seconds, 4),
        "events_per_sec": round(events_per_sec),
        "best_events_per_sec": round(measurement.best_events_per_sec),
        "verdict": {
            "ok": verdict_ok,
            "reasons": verdict_reasons,
            "flat": flat_verdict.as_dict(),
            "history": history_verdict.as_dict(),
        },
        "history_path": str(history_path),
        "history_samples": len(prior_history),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "argv": sys.argv[:1],
    }
    BENCH_EFFECTIVE_RUN_PATH.write_text(json.dumps(record, indent=1) + "\n")
    assert measurement.executed_events is not None
    amplification = measurement.events / max(measurement.executed_events, 1)
    print(
        f"\neffective perf smoke: {measurement.events} represented events "
        f"({measurement.executed_events} simulated, {amplification:.1f}x), "
        f"median of {measurement.samples} samples = {events_per_sec:,.0f} "
        f"effective events/sec, recorded to {BENCH_EFFECTIVE_RUN_PATH.name}"
    )

    assert measurement.events > 0 and measurement.cycles > 0
    assert events_per_sec >= MIN_EFFECTIVE_EVENTS_PER_SEC, (
        f"effective throughput collapsed: {events_per_sec:,.0f} events/sec is "
        f"below the {MIN_EFFECTIVE_EVENTS_PER_SEC:,} floor; "
        f"see {BENCH_EFFECTIVE_RUN_PATH}"
    )
    assert verdict_ok, (
        "effective throughput regressed: " + "; ".join(verdict_reasons) + "; if "
        "this machine is simply slower than the reference container, set "
        "REPRO_BENCH_MAX_REGRESSION=0 or commit a re-measured BENCH_core.json "
        f"(history: {history_path})"
    )
