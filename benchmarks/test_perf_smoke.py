"""Core events/sec smoke benchmarks with committed regression guards.

Runs one fixed, deterministic reference simulation (the CM composed model
at scale 1.0 on the 4-CU system under CacheRW) and records raw event
throughput to ``BENCH_core_run.json`` at the repository root, so the
performance trajectory of the simulation core is tracked from PR 2 onward
(CI uploads the file as an artifact).  A second smoke replays the same
workload split across two devices through the multi-device topology path
(record: ``BENCH_topology_run.json``; committed baseline: the
``topology`` key of ``BENCH_core.json``).

The baseline constant below is the throughput of the *pre-overhaul* core
(dataclass heap events, f-string counters, linear tag scans) measured on
the same reference run, single-core container, CPython 3.11.  The PR-2
hot-path overhaul (tuple-heap event queue, pre-bound counter handles,
indexed tag lookup) targets >= 2x that number; the hard assertion uses a
lower floor so unlucky machine noise cannot fail CI, while the recorded
JSON keeps the honest ratio.

**Regression guard**: ``BENCH_core.json`` is committed and read-only from
this test's point of view -- it holds the reference-container baseline
(``regression_baseline``).  Each run writes its own measurement to the
gitignored ``BENCH_core_run.json`` (CI uploads it as the trajectory
artifact) and must stay within ``REPRO_BENCH_MAX_REGRESSION`` (default
25%) of the committed baseline, so a PR that quietly slows the hot paths
fails here without ever dirtying the working tree.  On hardware unlike
the reference container set ``REPRO_BENCH_MAX_REGRESSION=0`` to disable
the guard (the record is still written), or commit a re-measured
baseline.

The reference run must stay fixed.  If it has to change (e.g. a model
change alters the event count), re-measure the baseline and update both
constants in the same commit.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.config import scaled_config
from repro.core.policies import CACHE_RW
from repro.session import SimulationSession
from repro.topology import TopologyConfig
from repro.workloads.registry import get_workload

#: pre-overhaul core throughput on the reference run (events/sec),
#: median of 3 runs on the single-core reference container (2026-07-28)
BASELINE_EVENTS_PER_SEC = 131_000

#: events executed by the reference run with the current model semantics;
#: purely informational in the JSON (behaviour is pinned by
#: tests/integration/test_core_equivalence.py, not here)
REFERENCE_WORKLOAD = "CM"
REFERENCE_SCALE = 1.0
REFERENCE_CUS = 4

#: opt-in speedup gate.  The baseline is an absolute number measured on
#: one reference container, so a hard default gate would fail tier-1 on
#: any slower machine with zero code regression; by default the benchmark
#: only records the ratio.  On hardware comparable to the reference
#: container, set REPRO_BENCH_MIN_SPEEDUP=2 to enforce the PR-2 target.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "0"))

#: unconditional sanity floor: an order of magnitude below even the
#: pre-overhaul core, so it passes on any plausible machine but catches a
#: catastrophic regression (e.g. an accidental O(ways) scan reintroduced)
MIN_EVENTS_PER_SEC = 20_000

#: allowed slowdown versus the committed regression baseline (0 disables)
MAX_REGRESSION = float(os.environ.get("REPRO_BENCH_MAX_REGRESSION", "0.25"))

#: committed reference-container baseline (never written by this test)
BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_core.json"
#: per-run measurement record (gitignored; CI uploads it as an artifact)
BENCH_RUN_PATH = Path(__file__).resolve().parents[1] / "BENCH_core_run.json"
#: per-run record of the multi-device smoke (gitignored, uploaded like the
#: core record); its committed baseline lives under the "topology" key of
#: BENCH_core.json
BENCH_TOPOLOGY_RUN_PATH = (
    Path(__file__).resolve().parents[1] / "BENCH_topology_run.json"
)

#: the multi-device reference run: the same CM workload split across two
#: 2-CU devices with the default (chiplet-ish) fabric.  Fixed like the
#: core reference; re-measure the committed baseline if it must change.
TOPOLOGY_DEVICES = 2
TOPOLOGY_CUS_PER_DEVICE = 2


def _committed_record() -> dict:
    """The committed baseline record, or {} when absent or unparseable."""
    try:
        return json.loads(BENCH_PATH.read_text())
    except (OSError, ValueError):
        return {}


def _reference_session() -> SimulationSession:
    return SimulationSession(policy=CACHE_RW, config=scaled_config(REFERENCE_CUS))


def test_core_events_per_second():
    trace = get_workload(REFERENCE_WORKLOAD, scale=REFERENCE_SCALE).build_trace()

    # one short warm-up run so allocator/import effects don't bias the timing
    warmup = SimulationSession(policy=CACHE_RW, config=scaled_config(2))
    warmup.run(get_workload(REFERENCE_WORKLOAD, scale=0.1))

    # best-of-2: the run is deterministic, so the faster repetition is the
    # one with less scheduler/allocator noise (standard benchmark practice)
    elapsed = None
    for _ in range(2):
        session = _reference_session()
        start = time.perf_counter()
        cycles = session.run(trace).cycles
        attempt = time.perf_counter() - start
        events = session.sim.queue.executed
        if elapsed is None or attempt < elapsed:
            elapsed = attempt

    events_per_sec = events / elapsed
    speedup = events_per_sec / BASELINE_EVENTS_PER_SEC

    committed = _committed_record()
    regression_baseline = committed.get("regression_baseline") or committed.get(
        "events_per_sec"
    )

    record = {
        "schema": 1,
        "benchmark": "core_events_per_second",
        "reference": {
            "workload": REFERENCE_WORKLOAD,
            "scale": REFERENCE_SCALE,
            "num_cus": REFERENCE_CUS,
            "policy": CACHE_RW.name,
        },
        "events": events,
        "cycles": cycles,
        "seconds": round(elapsed, 4),
        "events_per_sec": round(events_per_sec),
        "baseline_events_per_sec": BASELINE_EVENTS_PER_SEC,
        "speedup_vs_baseline": round(speedup, 2),
        # null when no committed BENCH_core.json was found: the field means
        # "the reference-container baseline", never this machine's own run
        "regression_baseline": regression_baseline,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "argv": sys.argv[:1],
    }
    BENCH_RUN_PATH.write_text(json.dumps(record, indent=1) + "\n")
    print(
        f"\ncore perf smoke: {events} events in {elapsed:.3f}s = "
        f"{events_per_sec:,.0f} events/sec ({speedup:.2f}x baseline), "
        f"recorded to {BENCH_RUN_PATH.name}"
    )

    assert events > 0 and cycles > 0
    assert events_per_sec >= MIN_EVENTS_PER_SEC, (
        f"core throughput collapsed: {events_per_sec:,.0f} events/sec is below "
        f"the {MIN_EVENTS_PER_SEC:,} sanity floor; see {BENCH_RUN_PATH}"
    )
    if MIN_SPEEDUP > 0:
        assert speedup >= MIN_SPEEDUP, (
            f"core throughput regressed: {events_per_sec:,.0f} events/sec is only "
            f"{speedup:.2f}x the pre-overhaul baseline of {BASELINE_EVENTS_PER_SEC:,} "
            f"(enforced floor {MIN_SPEEDUP}x); see {BENCH_PATH}"
        )
    if MAX_REGRESSION > 0 and regression_baseline:
        floor = regression_baseline * (1.0 - MAX_REGRESSION)
        assert events_per_sec >= floor, (
            f"core throughput regressed more than {MAX_REGRESSION:.0%} vs the "
            f"committed baseline: {events_per_sec:,.0f} events/sec < "
            f"{floor:,.0f} (baseline {regression_baseline:,}); if this machine "
            "is simply slower than the reference container, set "
            "REPRO_BENCH_MAX_REGRESSION=0 or commit a re-measured BENCH_core.json"
        )


def test_topology_events_per_second():
    """Multi-device smoke: the NUMA wiring must not sink core throughput.

    Same reference workload as the core smoke, split across two devices.
    The multi-device hot path adds one request clone plus interleave
    arithmetic per slice-bound access, so per-event throughput sits close
    to the single-device number; this guard (baseline under the
    ``topology`` key of BENCH_core.json) catches a slice-routing change
    that accidentally turns the fabric into an event storm.
    """
    trace = get_workload(REFERENCE_WORKLOAD, scale=REFERENCE_SCALE).build_trace()
    topology = TopologyConfig(num_devices=TOPOLOGY_DEVICES)

    def session() -> SimulationSession:
        return SimulationSession(
            policy=CACHE_RW,
            config=scaled_config(TOPOLOGY_CUS_PER_DEVICE),
            topology=topology,
        )

    session().run(get_workload(REFERENCE_WORKLOAD, scale=0.1))  # warm-up

    elapsed = None
    for _ in range(2):
        run = session()
        start = time.perf_counter()
        cycles = run.run(trace).cycles
        attempt = time.perf_counter() - start
        events = run.sim.queue.executed
        if elapsed is None or attempt < elapsed:
            elapsed = attempt

    events_per_sec = events / elapsed
    committed = _committed_record().get("topology", {})
    regression_baseline = committed.get("regression_baseline")

    record = {
        "schema": 1,
        "benchmark": "topology_events_per_second",
        "reference": {
            "workload": REFERENCE_WORKLOAD,
            "scale": REFERENCE_SCALE,
            "num_devices": TOPOLOGY_DEVICES,
            "cus_per_device": TOPOLOGY_CUS_PER_DEVICE,
            "policy": CACHE_RW.name,
        },
        "events": events,
        "cycles": cycles,
        "seconds": round(elapsed, 4),
        "events_per_sec": round(events_per_sec),
        "regression_baseline": regression_baseline,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "argv": sys.argv[:1],
    }
    BENCH_TOPOLOGY_RUN_PATH.write_text(json.dumps(record, indent=1) + "\n")
    print(
        f"\ntopology perf smoke: {events} events in {elapsed:.3f}s = "
        f"{events_per_sec:,.0f} events/sec on {TOPOLOGY_DEVICES} devices, "
        f"recorded to {BENCH_TOPOLOGY_RUN_PATH.name}"
    )

    assert events > 0 and cycles > 0
    assert events_per_sec >= MIN_EVENTS_PER_SEC, (
        f"multi-device throughput collapsed: {events_per_sec:,.0f} events/sec is "
        f"below the {MIN_EVENTS_PER_SEC:,} sanity floor; see {BENCH_TOPOLOGY_RUN_PATH}"
    )
    if MAX_REGRESSION > 0 and regression_baseline:
        floor = regression_baseline * (1.0 - MAX_REGRESSION)
        assert events_per_sec >= floor, (
            f"multi-device throughput regressed more than {MAX_REGRESSION:.0%} vs "
            f"the committed baseline: {events_per_sec:,.0f} events/sec < "
            f"{floor:,.0f} (baseline {regression_baseline:,}); if this machine "
            "is simply slower than the reference container, set "
            "REPRO_BENCH_MAX_REGRESSION=0 or commit a re-measured baseline"
        )
