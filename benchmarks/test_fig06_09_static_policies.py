"""Figures 6-9: the three static caching policies across all 17 workloads.

Shape assertions encode the paper's headline qualitative claims:

* the workload categories of Figure 6 (insensitive / reuse sensitive /
  throughput sensitive) emerge from the measured execution times;
* caching reduces DRAM traffic for the reuse-sensitive workloads (Figure 7);
* enabling caching raises cache stalls by orders of magnitude (Figure 8);
* caching disturbs DRAM row locality for the streaming workloads (Figure 9).
"""

from __future__ import annotations

import pytest

from repro.core.classification import PAPER_CATEGORIES, WorkloadCategory
from repro.experiments import (
    figure6_execution_time,
    figure7_dram_accesses,
    figure8_cache_stalls,
    figure9_row_hit_rate,
    render_series_table,
)
from repro.experiments.static_policies import measured_categories, static_policy_sweep
from repro.workloads.registry import WORKLOAD_NAMES

from benchmarks.conftest import run_once


@pytest.fixture(scope="module")
def static_sweep(bench_runner):
    return static_policy_sweep(bench_runner)


def test_figure6_execution_time(benchmark, bench_runner, static_sweep):
    data = run_once(benchmark, figure6_execution_time, sweep=static_sweep)
    print()
    print(render_series_table("Figure 6: execution time normalized to Uncached", data,
                              workload_order=WORKLOAD_NAMES))
    categories = measured_categories(static_sweep)
    print("Measured categories vs paper:")
    matches = 0
    for name in WORKLOAD_NAMES:
        expected = PAPER_CATEGORIES[name]
        got = categories[name]
        matches += expected is got
        print(f"  {name:10s} paper={expected.value:22s} measured={got.value}")
    # the category structure should largely reproduce (allow a few borderline shifts)
    assert matches >= 10
    # headline cases
    assert categories["FwFc"] is WorkloadCategory.REUSE_SENSITIVE
    assert categories["BwPool"] is WorkloadCategory.REUSE_SENSITIVE
    assert data["FwAct"]["CacheRW"] >= 0.97
    assert data["SGEMM"]["CacheR"] == pytest.approx(1.0, abs=0.06)


def test_figure7_dram_accesses(benchmark, bench_runner, static_sweep):
    data = run_once(benchmark, figure7_dram_accesses, sweep=static_sweep)
    print()
    print(render_series_table("Figure 7: DRAM accesses normalized to Uncached", data,
                              workload_order=WORKLOAD_NAMES))
    # read caching removes a large share of GEMM / FC / softmax traffic
    assert data["SGEMM"]["CacheR"] < 0.7
    assert data["FwFc"]["CacheR"] < 0.7
    assert data["FwSoft"]["CacheR"] < 0.7
    # streaming activations have nothing to gain
    assert data["FwAct"]["CacheR"] == pytest.approx(1.0, abs=0.02)
    # write combining additionally removes DRAM writes for BwPool / BwBN
    assert data["BwPool"]["CacheRW"] < data["BwPool"]["CacheR"]
    assert data["BwBN"]["CacheRW"] < data["BwBN"]["CacheR"]


def test_figure8_cache_stalls(benchmark, bench_runner, static_sweep):
    data = run_once(benchmark, figure8_cache_stalls, sweep=static_sweep)
    print()
    print(render_series_table("Figure 8: cache stalls per GPU memory request", data,
                              workload_order=WORKLOAD_NAMES))
    for name in WORKLOAD_NAMES:
        # enabling caching never reduces stalls below the bypass configuration
        assert data[name]["Uncached"] <= data[name]["CacheR"] + 1e-9
    # the streaming layers suffer the largest stall counts (orders of magnitude)
    assert data["FwAct"]["CacheR"] > 100 * max(data["FwAct"]["Uncached"], 0.001)


def test_figure9_row_hit_rate(benchmark, bench_runner, static_sweep):
    data = run_once(benchmark, figure9_row_hit_rate, sweep=static_sweep)
    print()
    print(render_series_table("Figure 9: DRAM row-buffer hit ratio", data,
                              workload_order=WORKLOAD_NAMES))
    for name in WORKLOAD_NAMES:
        for value in data[name].values():
            assert 0.0 <= value <= 1.0
    # caching disturbs the regular streaming pattern of the pooling layer
    assert data["FwPool"]["CacheR"] <= data["FwPool"]["Uncached"] + 0.02
