"""Cache-effectiveness assertions for the shared executor and store.

The figure benchmarks all pull from one session-scoped runner; this module
asserts that sharing actually works: re-requesting an already-materialized
sweep is answered entirely by the in-process memo, and every report the
executor resolved was either simulated exactly once or served from the
persistent store (never simulated twice).
"""

from __future__ import annotations

from repro.experiments import ExperimentRunner


def test_repeat_sweep_is_free(bench_runner: ExperimentRunner) -> None:
    """A repeated static-policy sweep must not reach the executor at all."""
    bench_runner.sweep()  # warm (or confirm) the static grid
    before = bench_runner.stats()
    bench_runner.sweep()
    after = bench_runner.stats()
    assert after["runs_simulated"] == before["runs_simulated"]
    assert after["runs_loaded"] == before["runs_loaded"]
    assert after["memo_hits"] > before["memo_hits"]


def test_every_memoized_report_resolved_once(bench_runner: ExperimentRunner) -> None:
    """Executor resolutions account 1:1 for the memoized grid cells."""
    stats = bench_runner.stats()
    assert stats["runs_simulated"] + stats["runs_loaded"] == stats["cached_runs"]
