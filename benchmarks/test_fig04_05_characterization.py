"""Figures 4 and 5: GVOPS and GMR/s per workload under CacheR."""

from __future__ import annotations

from repro.experiments import figure4_gvops, figure5_gmrs, render_series_table
from repro.workloads.registry import WORKLOAD_NAMES

from benchmarks.conftest import run_once


def test_figure4_compute_bandwidth(benchmark, bench_runner):
    data = run_once(benchmark, figure4_gvops, bench_runner)
    print()
    print(render_series_table("Figure 4: compute bandwidth (GVOPS), CacheR", data,
                              value_format="{:.1f}", workload_order=WORKLOAD_NAMES))
    assert set(data) == set(WORKLOAD_NAMES)
    # the GEMMs are the most compute-intensive workloads in the paper as well
    assert data["SGEMM"]["GVOPS"] > data["FwAct"]["GVOPS"]


def test_figure5_memory_request_bandwidth(benchmark, bench_runner):
    data = run_once(benchmark, figure5_gmrs, bench_runner)
    print()
    print(render_series_table("Figure 5: memory request bandwidth (GMR/s), CacheR", data,
                              value_format="{:.4f}", workload_order=WORKLOAD_NAMES))
    # streaming activation layers demand far more request bandwidth than CM
    assert data["FwAct"]["GMR/s"] > data["CM"]["GMR/s"]
