"""The resilience figure: serving mixes under cache policies while faults fire.

The acceptance measurement of the fault-injection subsystem: the default
resilience mixes under the caching baseline and the paper's bypass/rinse
optimizations, against every registered single-cause fault plan plus the
healthy baseline, on the dual-chiplet topology.  Like every figure bench
this runs through the shared session runner: chaos cells persist in the
same store under fingerprints that cover the fault plan, and the
empty-plan baselines are ordinary serving cells shared with the
interference study, so a warm harness repeat simulates nothing.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments import (
    figure_resilience,
    render_series_table,
    resilience_series,
    resilience_summary,
)
from repro.experiments.resilience import (
    DEFAULT_RESILIENCE_MIXES,
    DEFAULT_RESILIENCE_PLANS,
    RESILIENCE_POLICIES,
    default_resilience_topology,
    resilience_artifact,
)
from repro.faults import FAULT_PLANS
from repro.streams import SERVING_MIXES

from benchmarks.conftest import run_once

#: figure data lands next to BENCH_core.json for the CI artifact upload
RESILIENCE_PATH = Path(__file__).resolve().parents[1] / "resilience_figure.json"


def test_figure_resilience(benchmark, bench_runner):
    mixes = [SERVING_MIXES[name] for name in DEFAULT_RESILIENCE_MIXES]
    plans = [FAULT_PLANS[name] for name in DEFAULT_RESILIENCE_PLANS]
    topology = default_resilience_topology()
    data = run_once(
        benchmark,
        figure_resilience,
        bench_runner,
        mixes=mixes,
        policies=RESILIENCE_POLICIES,
        plans=plans,
        topology=topology,
    )
    summary = resilience_summary(data)
    print()
    print(render_series_table(
        "Resilience: slowdown vs healthy baseline (same policy)",
        resilience_series(data, "slowdown"),
    ))
    print(render_series_table(
        "Resilience: availability (fraction of run with no fault active)",
        resilience_series(data, "availability"),
    ))
    print(render_series_table(
        "Resilience summary (geomean slowdown / mean availability)", summary
    ))
    RESILIENCE_PATH.write_text(
        json.dumps(
            resilience_artifact(
                data, summary, plans, topology=topology.label
            ),
            indent=1,
            sort_keys=True,
        )
        + "\n"
    )

    for mix_name, series in data.items():
        assert len(series) == len(RESILIENCE_POLICIES) * len(plans)
        for cell_name, cell in series.items():
            assert cell["cycles"] > 0
            if cell_name.endswith("@none"):
                # the healthy baseline is its own denominator and never
                # sees a fault
                assert cell["slowdown"] == 1.0
                assert cell["availability"] == 1.0
                assert cell["faults_injected"] == 0
            else:
                # every chaos cell really saw its faults and spent time
                # degraded; graceful degradation means it completed anyway
                assert cell["faults_injected"] > 0
                assert cell["degraded_cycles"] > 0
                assert 0.0 <= cell["availability"] < 1.0
    # chaos must actually cost something somewhere: the worst faulted
    # cell shows a real slowdown over its healthy baseline (individual
    # cells may come in under 1.0 -- evacuating a device can luckily
    # reduce cache contention -- but not the whole grid)
    worst = max(
        cell["slowdown"]
        for series in data.values()
        for name, cell in series.items()
        if not name.endswith("@none")
    )
    assert worst > 1.01, f"no fault plan showed measurable slowdown ({worst:.3f})"
