"""Shared fixtures for the benchmark harness.

The harness regenerates every table and figure of the paper's evaluation.
All figure benchmarks share one session-scoped
:class:`~repro.experiments.runner.ExperimentRunner` built on one shared
:class:`~repro.experiments.jobs.SweepExecutor`: the runner's in-process
memo dedupes (workload, policy) cells within the session, and the
executor's persistent :class:`~repro.experiments.store.ResultStore` (under
``benchmarks/.bench_store`` by default) carries finished reports across
harness invocations, so a re-run of the suite measures figure assembly on
a warm store instead of paying for every simulation again.  Each benchmark
prints the rendered figure, so the captured output (``bench_output.txt``)
doubles as the reproduction record referenced from EXPERIMENTS.md.

Environment knobs:

* ``REPRO_BENCH_SCALE``     -- workload scale factor (default 1.0).
* ``REPRO_BENCH_CUS``       -- number of CUs (default 8, the scaled system
  of DESIGN.md).
* ``REPRO_BENCH_JOBS``      -- worker processes for the sweeps (default 1;
  values above 1 fan the grid out with a process pool).
* ``REPRO_BENCH_CACHE_DIR`` -- result-store directory; set to the empty
  string to disable persistence entirely.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.config import scaled_config
from repro.experiments import ExperimentRunner

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_CUS = int(os.environ.get("REPRO_BENCH_CUS", "8"))
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
#: default store lives next to the harness; "" disables persistence
BENCH_CACHE_DIR = os.environ.get(
    "REPRO_BENCH_CACHE_DIR", str(Path(__file__).parent / ".bench_store")
)


@pytest.fixture(scope="session")
def bench_runner() -> ExperimentRunner:
    """The shared, memoizing experiment runner used by every figure bench.

    The runner wires its own executor: a process-pool backend when
    ``REPRO_BENCH_JOBS`` > 1 and a persistent store at ``BENCH_CACHE_DIR``.
    """
    return ExperimentRunner(
        scale=BENCH_SCALE,
        config=scaled_config(BENCH_CUS),
        jobs=BENCH_JOBS,
        cache_dir=BENCH_CACHE_DIR or None,
    )


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing.

    Simulation sweeps are long and deterministic; repeating them for
    statistical timing would multiply harness time for no insight.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
