"""Shared fixtures for the benchmark harness.

The harness regenerates every table and figure of the paper's evaluation.
All figure benchmarks share one session-scoped
:class:`~repro.experiments.runner.ExperimentRunner`, which memoizes the
individual (workload, policy) simulations: the first benchmark that needs a
sweep pays for it, later ones reuse the cached reports and only measure the
figure assembly.  Each benchmark prints the rendered figure, so the captured
output (``bench_output.txt``) doubles as the reproduction record referenced
from EXPERIMENTS.md.

Environment knobs:

* ``REPRO_BENCH_SCALE`` -- workload scale factor (default 1.0).
* ``REPRO_BENCH_CUS``   -- number of CUs (default 8, the scaled system of
  DESIGN.md).
"""

from __future__ import annotations

import os

import pytest

from repro.config import scaled_config
from repro.experiments import ExperimentRunner

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_CUS = int(os.environ.get("REPRO_BENCH_CUS", "8"))


@pytest.fixture(scope="session")
def bench_runner() -> ExperimentRunner:
    """The shared, memoizing experiment runner used by every figure bench."""
    return ExperimentRunner(scale=BENCH_SCALE, config=scaled_config(BENCH_CUS))


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing.

    Simulation sweeps are long and deterministic; repeating them for
    statistical timing would multiply harness time for no insight.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
