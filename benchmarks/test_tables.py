"""Table 1 (system configuration) and Table 2 (workload inventory)."""

from __future__ import annotations

from repro.experiments import table1_system_configuration, table2_workloads
from repro.experiments.render import render_kv_table, render_series_table

from benchmarks.conftest import BENCH_SCALE, run_once


def test_table1_system_configuration(benchmark):
    tables = run_once(benchmark, table1_system_configuration)
    print()
    print(render_kv_table("Table 1 (simulated, scaled configuration)", tables["simulated"]))
    print(render_kv_table("Table 1 (paper reference configuration)", tables["paper"]))
    assert tables["paper"]["# of CUs"] == "64"


def test_table2_workloads(benchmark):
    rows = run_once(benchmark, table2_workloads, scale=BENCH_SCALE)
    data = {
        str(row["name"]): {
            "paper_kernels": float(row["paper_total_kernels"]),
            "sim_kernels": float(row["sim_kernels"]),
            "sim_requests": float(row["sim_line_requests"]),
            "sim_KB": row["sim_footprint_bytes"] / 1024.0,
        }
        for row in rows
    }
    print()
    print(render_series_table("Table 2: studied MI workloads", data, value_format="{:.0f}"))
    assert len(rows) == 18
