"""Figure 14: the online dynamic policy vs the static envelope.

The acceptance measurement of the adaptive subsystem: across the full
workload suite (the paper's seventeen plus MHA), one dynamic run per
workload -- starting with no knowledge of the workload -- must beat the
per-workload *worst* static policy in geomean and sit inside the
static-best/optimization-stack envelope on the reuse-sensitive group.

Like every figure bench this runs through the shared session runner, so
the static cells come from the same store Figures 6-13 use, and the
dynamic cells persist under the adaptive configuration's fingerprint.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.adaptive import AdaptiveConfig
from repro.core.classification import PAPER_CATEGORIES, WorkloadCategory
from repro.experiments import adaptive_summary, figure14_adaptive, render_series_table
from repro.experiments.adaptive import DYNAMIC
from repro.experiments.optimizations import STATIC_WORST
from repro.workloads.registry import WORKLOAD_NAMES

from benchmarks.conftest import run_once

#: figure data lands next to BENCH_core.json for the CI artifact upload
FIG14_PATH = Path(__file__).resolve().parents[1] / "adaptive_figure.json"


@pytest.fixture(scope="module")
def adaptive_config() -> AdaptiveConfig:
    return AdaptiveConfig()


def test_figure14_dynamic_policy(benchmark, bench_runner, adaptive_config):
    data = run_once(
        benchmark, figure14_adaptive, bench_runner, adaptive_config=adaptive_config
    )
    summary = adaptive_summary(data)
    print()
    print(
        render_series_table(
            "Figure 14: dynamic policy vs static envelope "
            "(execution time normalized to best static)",
            data,
            workload_order=WORKLOAD_NAMES,
        )
    )
    print(render_series_table("Figure 14 geomean summary", summary))
    FIG14_PATH.write_text(
        json.dumps(
            {
                "schema": 1,
                "adaptive_fingerprint": adaptive_config.fingerprint(),
                "figure14": data,
                "summary": {group: dict(series) for group, series in summary.items()},
            },
            indent=1,
            sort_keys=True,
        )
        + "\n"
    )

    # the dynamic policy must clearly beat the static-worst envelope edge
    assert summary["All"][DYNAMIC] < summary["All"][STATIC_WORST]
    # and it must stay inside the envelope where adaptivity matters most:
    # on the reuse-sensitive group it tracks the best static policy ...
    reuse = summary[str(WorkloadCategory.REUSE_SENSITIVE)]
    assert reuse[DYNAMIC] < reuse[STATIC_WORST]
    assert reuse[DYNAMIC] <= 1.30, (
        "dynamic geomean drifted above the static-best envelope on the "
        f"reuse-sensitive group: {reuse[DYNAMIC]:.3f}"
    )
    # ... and no reuse-sensitive workload ends outside the worst edge
    for name in WORKLOAD_NAMES:
        if PAPER_CATEGORIES[name] is WorkloadCategory.REUSE_SENSITIVE:
            assert data[name][DYNAMIC] <= max(1.05, 1.02 * data[name][STATIC_WORST])
