"""The multi-tenant interference figure: serving mixes under cache policies.

The acceptance measurement of the stream subsystem: every registered
serving mix under the caching baseline and the paper's bypass/rinse
optimizations, in both CU-share modes, reported as per-tenant slowdown vs
solo execution and unfairness.  Like every figure bench this runs through
the shared session runner: mix cells persist in the same store under
fingerprints that cover the full stream configurations, and the solo
baselines are ordinary single-workload cells shared with the other
figures, so a warm harness repeat simulates nothing.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments import (
    figure_interference,
    interference_series,
    interference_summary,
    render_series_table,
)
from repro.experiments.interference import (
    CU_MODES,
    INTERFERENCE_POLICIES,
    interference_artifact,
)
from repro.streams import SERVING_MIXES

from benchmarks.conftest import run_once

#: figure data lands next to BENCH_core.json for the CI artifact upload
INTERFERENCE_PATH = Path(__file__).resolve().parents[1] / "interference_figure.json"


def test_figure_interference(benchmark, bench_runner):
    mixes = list(SERVING_MIXES.values())
    data = run_once(
        benchmark,
        figure_interference,
        bench_runner,
        mixes=mixes,
        policies=INTERFERENCE_POLICIES,
        modes=CU_MODES,
    )
    summary = interference_summary(data)
    print()
    print(render_series_table(
        "Multi-tenant interference: mean per-tenant slowdown vs solo",
        interference_series(data, "mean_slowdown"),
    ))
    print(render_series_table(
        "Multi-tenant interference: unfairness (max/min tenant slowdown)",
        interference_series(data, "unfairness"),
    ))
    print(render_series_table(
        "Serving summary (geomean slowdown / mean unfairness)", summary
    ))
    INTERFERENCE_PATH.write_text(
        json.dumps(
            interference_artifact(data, summary, mixes=mixes),
            indent=1,
            sort_keys=True,
        )
        + "\n"
    )

    for mix_name, series in data.items():
        for cell_name, cell in series.items():
            # a tenant sharing the GPU can only lose time to contention;
            # tiny scheduling wiggle room is the only tolerated exception
            assert cell["max_slowdown"] > 0.0
            assert cell["mean_slowdown"] >= 0.95, (
                f"{mix_name} {cell_name}: co-running sped tenants up "
                f"({cell['mean_slowdown']:.3f}) -- address-space isolation broken?"
            )
            assert cell["unfairness"] >= 1.0 - 1e-9
            tenants = cell["tenants"]
            assert len(tenants) == SERVING_MIXES[mix_name].num_streams
    # interference must actually bite somewhere: the worst shared-mode
    # cell shows a real slowdown over solo execution
    worst = max(
        cell["max_slowdown"]
        for series in data.values()
        for name, cell in series.items()
        if name.endswith("@shared")
    )
    assert worst > 1.01, f"no mix showed measurable interference ({worst:.3f})"
