"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not paper figures; they quantify how much each modelling /
design decision matters:

* rinse granularity (no rinsing vs row-granular DBI rinsing),
* reuse-predictor table size and threshold,
* L2 capacity sensitivity,
* wavefront occupancy (latency-tolerance) sensitivity,
* replacement policy sensitivity (LRU vs pseudo-random victim selection is
  exercised indirectly through the predictor sampling sets).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config import scaled_config
from repro.core.policies import CACHE_RW_AB, CACHE_RW_CR, CACHE_RW_PCBY
from repro.core.reuse_predictor import PredictorConfig
from repro.session import simulate
from repro.workloads.registry import get_workload

from benchmarks.conftest import run_once

ABLATION_SCALE = 0.4
CONFIG = scaled_config(4)


def _run(workload_name, policy, config=CONFIG, **kwargs):
    return simulate(get_workload(workload_name, scale=ABLATION_SCALE), policy, config=config, **kwargs)


def test_ablation_cache_rinsing(benchmark):
    """Row-granular rinsing vs no rinsing on the write-heavy BwPool."""

    def run():
        return {
            "CacheRW-AB (no rinse)": _run("BwPool", CACHE_RW_AB),
            "CacheRW-CR (row rinse)": _run("BwPool", CACHE_RW_CR),
        }

    reports = run_once(benchmark, run)
    print()
    for name, report in reports.items():
        print(f"  {name:24s} cycles={report.cycles:8d} row_hit={report.dram_row_hit_rate:.3f} "
              f"dram_writes={report.dram_writes}")
    assert (
        reports["CacheRW-CR (row rinse)"].dram_row_hit_rate
        >= reports["CacheRW-AB (no rinse)"].dram_row_hit_rate - 0.02
    )


def test_ablation_predictor_geometry(benchmark):
    """Reuse-predictor table size / threshold sweep on FwPool."""

    configs = {
        "64 entries": PredictorConfig(table_entries=64),
        "1024 entries": PredictorConfig(table_entries=1024),
        "strict threshold": PredictorConfig(table_entries=1024, bypass_threshold=1),
        "cache-by-default": PredictorConfig(table_entries=1024, initial_value=2),
    }

    def run():
        return {
            name: _run("FwPool", CACHE_RW_PCBY, predictor_config=config)
            for name, config in configs.items()
        }

    reports = run_once(benchmark, run)
    print()
    for name, report in reports.items():
        print(f"  {name:18s} cycles={report.cycles:8d} dram={report.dram_accesses:7d} "
              f"stalls/req={report.cache_stalls_per_request:.2f}")
    cycles = [r.cycles for r in reports.values()]
    assert max(cycles) < 4 * min(cycles)  # geometry tweaks should not explode runtime


def test_ablation_l2_capacity(benchmark):
    """L2 capacity sensitivity for the weight-reuse workload FwFc."""

    def run():
        results = {}
        for l2_kb in (128, 256, 512):
            config = CONFIG
            config = replace(config, l2=replace(config.l2, size_bytes=l2_kb * 1024))
            results[f"L2={l2_kb}KB"] = _run("FwFc", CACHE_RW_PCBY, config=config)
        return results

    reports = run_once(benchmark, run)
    print()
    for name, report in reports.items():
        print(f"  {name:10s} cycles={report.cycles:8d} dram={report.dram_accesses:7d} "
              f"l2_hit={report.l2_hit_rate:.3f}")
    smallest = reports["L2=128KB"].dram_accesses
    largest = reports["L2=512KB"].dram_accesses
    assert largest <= smallest  # more capacity never increases DRAM traffic


def test_ablation_wavefront_occupancy(benchmark):
    """Latency tolerance: how resident-wavefront count affects the streaming layer.

    On the scaled system the streaming layer saturates DRAM bandwidth with
    only a few wavefronts per SIMD, so the interesting observation is that
    occupancy changes move execution time only modestly once bandwidth is the
    limit -- the bench records the numbers and checks they stay in a sane
    envelope rather than asserting a strict ordering.
    """

    def run():
        results = {}
        for waves in (1, 2, 10):
            config = replace(CONFIG, gpu=replace(CONFIG.gpu, max_waves_per_simd=waves))
            results[f"{waves} waves/SIMD"] = _run("FwAct", CACHE_RW_AB, config=config)
        return results

    reports = run_once(benchmark, run)
    print()
    for name, report in reports.items():
        print(f"  {name:15s} cycles={report.cycles:8d} stalls/req={report.cache_stalls_per_request:.2f}")
    values = [r.cycles for r in reports.values()]
    assert max(values) <= 2 * min(values)
    dram = {r.dram_accesses for r in reports.values()}
    assert len(dram) == 1  # occupancy never changes the traffic, only the timing
