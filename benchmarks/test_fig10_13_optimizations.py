"""Figures 10-13: the cumulative optimization stack vs the static policies.

The headline claim of the paper is that allocation bypass + cache rinsing +
PC-based bypassing together match (or beat) the best static policy for
nearly every workload while avoiding the worst-case penalties.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    figure10_execution_time,
    figure11_dram_accesses,
    figure12_cache_stalls,
    figure13_row_hit_rate,
    render_series_table,
)
from repro.experiments.optimizations import STATIC_BEST, STATIC_WORST, optimization_sweep
from repro.workloads.registry import WORKLOAD_NAMES

from benchmarks.conftest import run_once


@pytest.fixture(scope="module")
def opt_sweep(bench_runner):
    return optimization_sweep(bench_runner)


def test_figure10_execution_time(benchmark, bench_runner, opt_sweep):
    data = run_once(benchmark, figure10_execution_time, sweep=opt_sweep)
    print()
    print(render_series_table("Figure 10: execution time normalized to best static policy",
                              data, workload_order=WORKLOAD_NAMES))
    near_best = sum(1 for name in WORKLOAD_NAMES if data[name]["CacheRW-PCby"] <= 1.15)
    print(
        f"CacheRW-PCby within 15% of the best static policy for "
        f"{near_best}/{len(WORKLOAD_NAMES)} workloads"
    )
    # the full stack should track the best static policy for most workloads
    assert near_best >= 12
    # and it should avoid the worst static policy's truly bad cases (a small
    # slack absorbs the predictor's training transient on the scaled runs)
    for name in WORKLOAD_NAMES:
        assert data[name]["CacheRW-PCby"] <= max(1.25, 1.1 * data[name][STATIC_WORST])


def test_figure11_dram_accesses(benchmark, bench_runner, opt_sweep):
    data = run_once(benchmark, figure11_dram_accesses, sweep=opt_sweep)
    print()
    print(render_series_table("Figure 11: DRAM accesses normalized to Uncached", data,
                              workload_order=WORKLOAD_NAMES))
    # the optimizations keep most of the traffic reduction of the best static policy
    for name in ("FwFc", "SGEMM", "FwSoft"):
        assert data[name]["CacheRW-PCby"] < 1.0


def test_figure12_cache_stalls(benchmark, bench_runner, opt_sweep):
    data = run_once(benchmark, figure12_cache_stalls, sweep=opt_sweep)
    print()
    print(render_series_table("Figure 12: cache stalls per GPU memory request", data,
                              workload_order=WORKLOAD_NAMES))
    # allocation bypass removes the bulk of the stalls of the worst static policy
    for name in ("FwAct", "BwAct", "FwLRN", "FwPool"):
        assert data[name]["CacheRW-AB"] < data[name][STATIC_WORST]


def test_figure13_row_hit_rate(benchmark, bench_runner, opt_sweep):
    data = run_once(benchmark, figure13_row_hit_rate, sweep=opt_sweep)
    print()
    print(render_series_table("Figure 13: DRAM row-buffer hit ratio", data,
                              workload_order=WORKLOAD_NAMES))
    # cache rinsing restores (or improves) row locality relative to plain AB
    for name in ("FwAct", "BwAct", "FwLRN", "BwPool"):
        assert data[name]["CacheRW-CR"] >= data[name]["CacheRW-AB"] - 0.02
