#!/usr/bin/env python
"""CI gate: a phase-sampled run stays inside the bounds it declares.

Runs one workload twice -- exact and with phase-sampled fast-forward --
and asserts, for every counter, ``|sampled - exact|`` is covered by the
error estimate the sampled report itself declares, and that the headline
counters the paper's figures are built from stay inside the 2% accuracy
budget.  Exit code is the assertion; output is one line per violation.

Usage::

    PYTHONPATH=src python benchmarks/check_sampling_drift.py \
        --workload FwLSTM --scale 1.0 [--budget 0.02]
"""

from __future__ import annotations

import argparse
import sys

from repro.accel import SamplingConfig
from repro.core.policies import policy_by_name
from repro.session import simulate
from repro.workloads import get_workload

#: the counters the paper's figures are built from
HEADLINE = (
    "gpu.vector_ops",
    "gpu.mem_requests",
    "l1.accesses",
    "l1.hits",
    "l2.accesses",
    "l2.hits",
    "dram.accesses",
    "dram.reads",
    "dram.writes",
    "cycles",
)


def flat(report: dict) -> dict:
    return dict(report["counters"], cycles=report["cycles"])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default="FwLSTM")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--policy", default="CacheRW")
    parser.add_argument(
        "--budget",
        type=float,
        default=0.02,
        help="max relative error allowed on headline counters (default 2%%)",
    )
    args = parser.parse_args(argv)

    policy = policy_by_name(args.policy)
    exact = flat(
        simulate(get_workload(args.workload, scale=args.scale), policy).to_dict()
    )
    sampled_report = simulate(
        get_workload(args.workload, scale=args.scale),
        policy,
        sampling=SamplingConfig(),
    ).to_dict()
    sampled = flat(sampled_report)
    estimates = sampled_report.get("error_estimates", {})
    summary = sampled_report.get("sampling", {})

    violations = []
    for name in sorted(set(exact) | set(sampled)):
        exact_value = exact.get(name, 0)
        sampled_value = sampled.get(name, 0)
        drift = abs(sampled_value - exact_value)
        declared = estimates.get(name, 0.0) * max(abs(sampled_value), 1)
        if drift > declared + 0.5:
            violations.append(
                f"{name}: exact {exact_value}, sampled {sampled_value}, "
                f"declared bound {declared:.2f}"
            )
        if name in HEADLINE:
            relative = drift / max(abs(exact_value), 1)
            if relative > args.budget:
                violations.append(
                    f"{name}: headline error {relative:.4f} exceeds "
                    f"budget {args.budget}"
                )

    skipped = summary.get("skipped_fraction", 0.0)
    print(
        f"{args.workload}@{args.scale}: {len(sampled)} counters checked, "
        f"{skipped:.0%} of kernels fast-forwarded, "
        f"{len(violations)} violation(s)"
    )
    for line in violations:
        print(" ", line)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
